(* A collection is either exact (every sample retained; percentiles
   from a cached sorted view — the historical behaviour, byte-identical
   to before sketches existed) or sketched: aggregates maintained
   incrementally, percentiles answered by a t-digest, and at most
   1-in-[retain_every] raw samples kept (possibly none).  Sketched mode
   is what lets a 10^6-request serve report p50/p99 in O(1) memory. *)

type sketched = {
  retain_every : int; (* 0 = retain no raw samples *)
  retain_phase : int;
  digest : Sketch.Tdigest.t;
  mutable seen : int;
  mutable s_sum : float;
  mutable s_min : float;
  mutable s_max : float;
  mutable s_sumsq : float;
}

type mode = Exact | Sk of sketched

type t = {
  mutable samples : float array;
  mutable len : int;
  mutable view : float array;
      (** Cached sorted copy of the live prefix; valid iff [view_ok].
          Percentile queries sort once after a batch of adds instead of
          O(n log n) per query, and never disturb insertion order. *)
  mutable view_ok : bool;
  mode : mode;
}

let create () =
  { samples = Array.make 16 0.0; len = 0; view = [||]; view_ok = false; mode = Exact }

let sketched ?(retain_every = 0) ?(seed = 0) ?compression () =
  if retain_every < 0 then invalid_arg "Stats.sketched: retain_every < 0";
  let retain_phase =
    if retain_every > 1 then ((seed mod retain_every) + retain_every) mod retain_every
    else 0
  in
  {
    samples = Array.make 16 0.0;
    len = 0;
    view = [||];
    view_ok = false;
    mode =
      Sk
        {
          retain_every;
          retain_phase;
          digest = Sketch.Tdigest.create ?compression ();
          seen = 0;
          s_sum = 0.0;
          s_min = infinity;
          s_max = neg_infinity;
          s_sumsq = 0.0;
        };
  }

let is_sketched t = match t.mode with Exact -> false | Sk _ -> true

let push t x =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1;
  t.view_ok <- false

let add t x =
  match t.mode with
  | Exact -> push t x
  | Sk s ->
      s.s_sum <- s.s_sum +. x;
      if x < s.s_min then s.s_min <- x;
      if x > s.s_max then s.s_max <- x;
      s.s_sumsq <- s.s_sumsq +. (x *. x);
      Sketch.Tdigest.add s.digest x;
      if s.retain_every > 0 && s.seen mod s.retain_every = s.retain_phase then
        push t x;
      s.seen <- s.seen + 1

let add_time t d = add t (Int64.to_float (Units.to_ns d))

let count t = match t.mode with Exact -> t.len | Sk s -> s.seen
let is_empty t = count t = 0

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.samples.(i)
  done;
  !acc

let sum t = match t.mode with Exact -> fold ( +. ) 0.0 t | Sk s -> s.s_sum

let mean t =
  let n = count t in
  if n = 0 then 0.0 else sum t /. float_of_int n

let min t = match t.mode with Exact -> fold Stdlib.min infinity t | Sk s -> s.s_min
let max t =
  match t.mode with Exact -> fold Stdlib.max neg_infinity t | Sk s -> s.s_max

let stddev t =
  match t.mode with
  | Exact ->
      if t.len < 2 then 0.0
      else begin
        let m = mean t in
        let ss = fold (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 t in
        sqrt (ss /. float_of_int (t.len - 1))
      end
  | Sk s ->
      if s.seen < 2 then 0.0
      else begin
        let n = float_of_int s.seen in
        let m = s.s_sum /. n in
        let ss = Float.max 0.0 (s.s_sumsq -. (n *. m *. m)) in
        sqrt (ss /. (n -. 1.0))
      end

let sorted_view t =
  if not t.view_ok then begin
    t.view <- Array.sub t.samples 0 t.len;
    Array.sort Float.compare t.view;
    t.view_ok <- true
  end;
  t.view

let percentile t p =
  if is_empty t then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  match t.mode with
  | Sk s -> Sketch.Tdigest.percentile s.digest p
  | Exact ->
      let view = sorted_view t in
      let rank = p /. 100.0 *. float_of_int (t.len - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      if lo = hi then view.(lo)
      else begin
        let frac = rank -. float_of_int lo in
        view.(lo) +. (frac *. (view.(hi) -. view.(lo)))
      end

let p50 t = percentile t 50.0
let p90 t = percentile t 90.0
let p99 t = percentile t 99.0

let percentile_time t p = Units.ns_f (percentile t p)
let mean_time t = Units.ns_f (mean t)

let clear t =
  t.len <- 0;
  t.view_ok <- false;
  match t.mode with
  | Exact -> ()
  | Sk s ->
      s.seen <- 0;
      s.s_sum <- 0.0;
      s.s_min <- infinity;
      s.s_max <- neg_infinity;
      s.s_sumsq <- 0.0;
      Sketch.Tdigest.clear s.digest

let to_list t = Array.to_list (Array.sub t.samples 0 t.len)

(* --- Named monotonic counters ------------------------------------- *)

(* A counter handle is just its name; the value cell lives in a
   registry resolved through domain-local storage at every bump.  That
   indirection is what lets [Par.with_shard] route a parallel task's
   counts into a private shard with no locks on the hot path, then
   fold them back into the main registry in submission order. *)
module Counter = struct
  type t = string

  type registry = (string, int ref) Hashtbl.t

  let create_registry () : registry = Hashtbl.create 32

  let default : registry = create_registry ()

  let current_key = Domain.DLS.new_key create_registry
  let () = Domain.DLS.set current_key default
  let current () = Domain.DLS.get current_key
  let set_current r = Domain.DLS.set current_key r

  let cell (r : registry) name =
    match Hashtbl.find_opt r name with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.replace r name c;
        c

  (* Pre-register in [default] so never-bumped counters still show up
     (as zeros) in exports.  All [make] calls are module-init, i.e. on
     the main domain. *)
  let make name =
    ignore (cell default name);
    name

  let incr c = Stdlib.incr (cell (current ()) c)

  let add c n =
    let cl = cell (current ()) c in
    cl := !cl + n

  let value c = !(cell (current ()) c)
  let name c = c
  let reset c = cell (current ()) c := 0

  (* Cells are kept (recycled shards reuse them); [merge_counters]
     skips zero counts, so a scrubbed registry merges identically to a
     fresh one. *)
  let reset_registry (r : registry) = Hashtbl.iter (fun _ c -> c := 0) r
end

let counter_value name =
  match Hashtbl.find_opt (Counter.current ()) name with
  | Some c -> !c
  | None -> 0

let counters () =
  Hashtbl.fold (fun n c acc -> (n, !c) :: acc) (Counter.current ()) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_counters () = Hashtbl.iter (fun _ c -> c := 0) (Counter.current ())

(* Fold a shard registry into the current one.  Sums are
   order-insensitive, so this is safe at any deterministic join. *)
let merge_counters (src : Counter.registry) =
  let dst = Counter.current () in
  Hashtbl.fold (fun n c acc -> (n, !c) :: acc) src []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (n, v) ->
         if v <> 0 then
           let cl = Counter.cell dst n in
           cl := !cl + v)
