(** Host-kernel syscall cost model.

    Baseline per-call overheads for a modern Xeon under Linux ~6.5.
    Values are entry/exit plus typical in-kernel work for a small
    request; bulk data movement is charged separately by the caller at
    the relevant bandwidth.  gVisor's ptrace platform intercepts and
    forwards every syscall, which multiplies the cost — the paper
    measures ~50% of gVisor runtime CPU in kernel mode (§8.2). *)

type name =
  | Open
  | Close
  | Read
  | Write
  | Mmap
  | Munmap
  | Mprotect
  | Pkey_mprotect
  | Pkey_alloc
  | Clone
  | Futex
  | Pipe2
  | Socket
  | Bind
  | Listen
  | Connect
  | Accept
  | Sendto
  | Recvfrom
  | Epoll_wait
  | Gettimeofday
  | Dlmopen  (** Not a syscall, but the loader path is charged here. *)
  | Userfaultfd

type interception =
  | Direct  (** Normal host syscall. *)
  | Ptrace  (** gVisor ptrace platform: stop + forward + resume. *)
  | Vmexit  (** Inside a MicroVM: guest exit + VMM handling. *)

val cost : ?via:interception -> name -> Sim.Units.time
(** Per-call latency; [via] defaults to [Direct]. *)

val pp_name : Format.formatter -> name -> unit
