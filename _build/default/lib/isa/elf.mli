(** Minimal ELF-like container for function images.

    The paper's platform receives user function binaries (and AOT-
    compiled WASM "converted into the ELF format", §6) as files, scans
    them, and maps their text into the WFD.  This container gives the
    repo that artifact: a header (magic, version, toolchain), a string
    table, a symbol table (function name → text offset) and a .text
    section holding the encoded instruction stream.

    [load] recovers an {!Image.t} whose byte stream equals the original
    (so {!Scanner} verdicts agree before/after a store/load
    round-trip), which is what admission-control-from-disk requires. *)

val magic : string
(** "\x7fASE" (AlloyStack Executable). *)

type symbol = { sym_name : string; offset : int }

type t = {
  toolchain : Image.toolchain;
  entry : string;  (** Name of the entry symbol. *)
  symbols : symbol list;
  text : string;  (** Encoded instruction bytes. *)
}

val of_image : ?entry:string -> Image.t -> t
(** Wrap an image; every instruction start becomes a local symbol
    [insn_N] unless it is the entry.  [entry] defaults to the image
    name. *)

val store : t -> bytes
exception Malformed of string
val load : bytes -> t
(** Raises {!Malformed}. *)

val text_image : name:string -> t -> Image.t option
(** Re-decode the text into an instruction stream, [None] if the bytes
    do not decode cleanly back (foreign/corrupt binaries). *)

val scan_bytes : t -> Scanner.occurrence list
(** Run the blacklist scanner directly over the container's text using
    its symbol offsets as instruction boundaries. *)
