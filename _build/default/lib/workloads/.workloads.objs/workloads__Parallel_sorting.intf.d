lib/workloads/parallel_sorting.mli: Fctx
