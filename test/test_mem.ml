(* Tests for the memory subsystem: MPK protection, page tables,
   address spaces, the linked-list allocator, demand paging. *)

open Mem

let k = Prot.key_of_int

let test_prot_keys () =
  Alcotest.(check int) "default key" 0 (Prot.key_to_int Prot.default_key);
  Alcotest.check_raises "key 16 invalid"
    (Invalid_argument "Prot.key_of_int: key must be in 0..15") (fun () ->
      ignore (Prot.key_of_int 16));
  Alcotest.check_raises "negative key"
    (Invalid_argument "Prot.key_of_int: key must be in 0..15") (fun () ->
      ignore (Prot.key_of_int (-1)))

let test_pkru_rights () =
  let p = Prot.pkru_allow_all in
  Alcotest.(check bool) "allow-all reads" true (Prot.can_read p (k 5));
  Alcotest.(check bool) "allow-all writes" true (Prot.can_write p (k 5));
  let p = Prot.deny p (k 5) in
  Alcotest.(check bool) "denied read" false (Prot.can_read p (k 5));
  Alcotest.(check bool) "denied write" false (Prot.can_write p (k 5));
  Alcotest.(check bool) "other key unaffected" true (Prot.can_read p (k 6));
  let p = Prot.deny_write p (k 5) in
  Alcotest.(check bool) "read-only read" true (Prot.can_read p (k 5));
  Alcotest.(check bool) "read-only write" false (Prot.can_write p (k 5));
  let p = Prot.allow p (k 5) in
  Alcotest.(check bool) "re-allowed" true (Prot.can_write p (k 5))

let test_pkru_deny_all_except () =
  let p = Prot.pkru_deny_all_except [ k 2; k 3 ] in
  Alcotest.(check bool) "granted key 2" true (Prot.can_write p (k 2));
  Alcotest.(check bool) "granted key 3" true (Prot.can_read p (k 3));
  Alcotest.(check bool) "key 0 denied" false (Prot.can_read p (k 0));
  Alcotest.(check bool) "key 15 denied" false (Prot.can_read p (k 15));
  (* Execute is never policed by PKRU. *)
  Alcotest.(check bool) "execute allowed" true (Prot.access_allowed p (k 0) Prot.Execute)

let test_page_geometry () =
  Alcotest.(check int) "size" 4096 Page.size;
  Alcotest.(check int) "vpn" 2 (Page.vpn_of_addr 8192);
  Alcotest.(check int) "offset" 1 (Page.offset_of_addr 8193);
  Alcotest.(check int) "align up" 8192 (Page.align_up 4097);
  Alcotest.(check int) "align up exact" 4096 (Page.align_up 4096);
  Alcotest.(check int) "align down" 4096 (Page.align_down 8191);
  Alcotest.(check int) "count" 2 (Page.count_for 4097);
  Alcotest.(check int) "count zero" 0 (Page.count_for 0)

let base = 0x10_0000
let all = Prot.pkru_allow_all

let fresh_mapped ?(len = 4096 * 4) ?perm ?pkey () =
  let aspace = Address_space.create () in
  Address_space.map aspace ~addr:base ~len ?perm ?pkey ();
  aspace

let test_aspace_roundtrip () =
  let aspace = fresh_mapped () in
  let data = Bytes.of_string "hello, WFD" in
  Address_space.store_bytes aspace ~pkru:all base data;
  let got = Address_space.load_bytes aspace ~pkru:all base (Bytes.length data) in
  Alcotest.(check bytes) "roundtrip" data got

let test_aspace_cross_page () =
  let aspace = fresh_mapped () in
  let data = Bytes.init 10_000 (fun i -> Char.chr (i mod 256)) in
  Address_space.store_bytes aspace ~pkru:all (base + 100) data;
  let got = Address_space.load_bytes aspace ~pkru:all (base + 100) 10_000 in
  Alcotest.(check bytes) "cross-page roundtrip" data got

let test_aspace_int64 () =
  let aspace = fresh_mapped () in
  (* Straddling a page boundary on purpose. *)
  Address_space.store_int64 aspace ~pkru:all (base + 4090) 0x1122334455667788L;
  Alcotest.(check int64) "int64 roundtrip" 0x1122334455667788L
    (Address_space.load_int64 aspace ~pkru:all (base + 4090))

let test_aspace_unmapped_fault () =
  let aspace = fresh_mapped () in
  (match Address_space.load_byte aspace ~pkru:all 0x50_0000 with
  | _ -> Alcotest.fail "expected fault"
  | exception Address_space.Fault { kind = Address_space.Unmapped; _ } -> ());
  (* A bulk op that runs off the end of the mapping faults too. *)
  match
    Address_space.load_bytes aspace ~pkru:all (base + (4096 * 3)) 8192
  with
  | _ -> Alcotest.fail "expected fault"
  | exception Address_space.Fault { kind = Address_space.Unmapped; _ } -> ()

let test_aspace_perm_fault () =
  let aspace = fresh_mapped ~perm:Page.ro () in
  (match Address_space.store_byte aspace ~pkru:all base 'x' with
  | () -> Alcotest.fail "expected write fault"
  | exception Address_space.Fault { kind = Address_space.Perm_denied Prot.Write; _ } -> ());
  (* Reads still fine. *)
  ignore (Address_space.load_byte aspace ~pkru:all base);
  (* Not executable. *)
  match Address_space.check_exec aspace ~pkru:all base with
  | () -> Alcotest.fail "expected exec fault"
  | exception Address_space.Fault { kind = Address_space.Perm_denied Prot.Execute; _ } -> ()

let test_aspace_pkey_fault () =
  let aspace = fresh_mapped ~pkey:(k 4) () in
  let pkru = Prot.pkru_deny_all_except [ k 2 ] in
  (match Address_space.load_byte aspace ~pkru base with
  | _ -> Alcotest.fail "expected pkey fault"
  | exception Address_space.Fault { kind = Address_space.Pkey_denied (Prot.Read, key); _ }
    ->
      Alcotest.(check int) "faulting key" 4 (Prot.key_to_int key));
  (* Granting the key fixes it. *)
  let pkru = Prot.allow pkru (k 4) in
  ignore (Address_space.load_byte aspace ~pkru base)

let test_aspace_pkey_mprotect () =
  let aspace = fresh_mapped () in
  Address_space.pkey_mprotect aspace ~addr:base ~len:4096 (k 7);
  Alcotest.(check int) "retagged" 7 (Prot.key_to_int (Address_space.key_of aspace base));
  Alcotest.(check int) "rest untouched" 0
    (Prot.key_to_int (Address_space.key_of aspace (base + 4096)));
  let pkru = Prot.pkru_deny_all_except [ k 0 ] in
  (match Address_space.load_byte aspace ~pkru base with
  | _ -> Alcotest.fail "expected fault after retag"
  | exception Address_space.Fault _ -> ());
  ignore (Address_space.load_byte aspace ~pkru (base + 4096))

let test_aspace_map_conflicts () =
  let aspace = fresh_mapped () in
  (match Address_space.map aspace ~addr:base ~len:4096 () with
  | () -> Alcotest.fail "double map must fail"
  | exception Invalid_argument _ -> ());
  (match Address_space.map aspace ~addr:(base + 1) ~len:4096 () with
  | () -> Alcotest.fail "unaligned map must fail"
  | exception Invalid_argument _ -> ());
  Address_space.unmap aspace ~addr:base ~len:4096;
  (* Now the first page can be mapped again. *)
  Address_space.map aspace ~addr:base ~len:4096 ();
  Alcotest.(check int) "page count stable" 4 (Address_space.page_count aspace)

let test_aspace_blit_fill () =
  let aspace = fresh_mapped () in
  let data = Bytes.init 5000 (fun i -> Char.chr (i mod 251)) in
  Address_space.store_bytes aspace ~pkru:all base data;
  Address_space.blit aspace ~pkru:all ~src:base ~dst:(base + 6000) ~len:5000;
  Alcotest.(check bytes) "blit copies" data
    (Address_space.load_bytes aspace ~pkru:all (base + 6000) 5000);
  Address_space.fill aspace ~pkru:all ~addr:base ~len:100 'z';
  Alcotest.(check string) "fill" (String.make 100 'z')
    (Bytes.to_string (Address_space.load_bytes aspace ~pkru:all base 100))

let test_demand_paging () =
  let aspace = fresh_mapped () in
  let backing = Bytes.make 4096 '\xAB' in
  Address_space.set_fault_handler aspace
    (Some (fun addr -> Address_space.populate_page aspace ~vpn:(Page.vpn_of_addr addr) backing));
  let c = Address_space.load_byte aspace ~pkru:all (base + 4096) in
  Alcotest.(check char) "populated on fault" '\xAB' c;
  Alcotest.(check int) "one fault" 1 (Address_space.touched_fault_count aspace);
  ignore (Address_space.load_byte aspace ~pkru:all (base + 4097));
  Alcotest.(check int) "no second fault for same page" 1
    (Address_space.touched_fault_count aspace)

(* --- software TLB --- *)

(* A warmed TLB entry must not outlive an mprotect: the generation bump
   forces a re-walk, so the revoked right faults exactly like the slow
   path. *)
let test_tlb_mprotect_revoke () =
  let run tlb =
    let a = Address_space.create ~tlb () in
    Address_space.map a ~addr:base ~len:4096 ();
    Address_space.store_byte a ~pkru:all base 'a';
    ignore (Address_space.load_byte a ~pkru:all base);
    Address_space.mprotect a ~addr:base ~len:4096 Page.ro;
    (match Address_space.store_byte a ~pkru:all base 'b' with
    | () -> Alcotest.fail "expected write fault after mprotect"
    | exception
        Address_space.Fault { kind = Address_space.Perm_denied Prot.Write; _ }
      -> ());
    (* Reads survive, and see the pre-revoke store (fault left no
       partial effect). *)
    Alcotest.(check char) "readable, value intact" 'a'
      (Address_space.load_byte a ~pkru:all base)
  in
  run true;
  run false

let test_tlb_pkey_revoke () =
  let a = fresh_mapped () in
  ignore (Address_space.load_byte a ~pkru:all base);
  ignore (Address_space.load_byte a ~pkru:all base);
  Address_space.pkey_mprotect a ~addr:base ~len:4096 (k 6);
  let pkru = Prot.pkru_deny_all_except [ k 0 ] in
  (match Address_space.load_byte a ~pkru base with
  | _ -> Alcotest.fail "expected pkey fault after retag"
  | exception
      Address_space.Fault
        { kind = Address_space.Pkey_denied (Prot.Read, key); _ } ->
      Alcotest.(check int) "faulting key" 6 (Prot.key_to_int key));
  (* Same pkru as the warm entry still works: the flush only forces a
     re-walk, it does not revoke anything allow-all may do. *)
  ignore (Address_space.load_byte a ~pkru:all base)

(* Switching PKRU alone (no flush happens) must also be enforced: the
   entry is tagged with the fill-time PKRU, so a different rights word
   misses and takes the fully-checked walk. *)
let test_tlb_pkru_switch () =
  let a = fresh_mapped ~pkey:(k 3) () in
  ignore (Address_space.load_byte a ~pkru:all base);
  ignore (Address_space.load_byte a ~pkru:all base);
  let denying = Prot.pkru_deny_all_except [ k 0 ] in
  match Address_space.load_byte a ~pkru:denying base with
  | _ -> Alcotest.fail "expected pkey fault on PKRU switch"
  | exception
      Address_space.Fault { kind = Address_space.Pkey_denied (Prot.Read, _); _ }
    -> ()

let test_tlb_unmap_revoke () =
  let a = fresh_mapped () in
  ignore (Address_space.load_byte a ~pkru:all base);
  ignore (Address_space.load_byte a ~pkru:all base);
  Address_space.unmap a ~addr:base ~len:4096;
  (match Address_space.load_byte a ~pkru:all base with
  | _ -> Alcotest.fail "expected unmapped fault"
  | exception Address_space.Fault { kind = Address_space.Unmapped; _ } -> ());
  (* Pages past the unmapped range are unaffected. *)
  ignore (Address_space.load_byte a ~pkru:all (base + 4096))

(* Demand-zero service must fire exactly once per page whether or not
   the TLB is on: the walk populates the page before it can enter the
   TLB, so hits can never skip a pending fill. *)
let test_tlb_demand_zero_once () =
  let run tlb =
    let a = Address_space.create ~tlb () in
    Address_space.map a ~addr:base ~len:(4096 * 2) ();
    let served = ref 0 in
    Address_space.set_fault_handler a
      (Some
         (fun addr ->
           incr served;
           Address_space.populate_page a ~vpn:(Page.vpn_of_addr addr)
             (Bytes.make 4096 '\xCD')));
    for _ = 1 to 5 do
      ignore (Address_space.load_byte a ~pkru:all base)
    done;
    Address_space.store_byte a ~pkru:all (base + 1) 'q';
    Alcotest.(check int) "handler ran once" 1 !served;
    Alcotest.(check int) "one touched fault" 1
      (Address_space.touched_fault_count a);
    ignore (Address_space.load_byte a ~pkru:all (base + 4096));
    Alcotest.(check int) "second page faults independently" 2 !served;
    (Address_space.access_count a, Address_space.touched_fault_count a)
  in
  let with_tlb = run true and without_tlb = run false in
  Alcotest.(check (pair int int))
    "accounting identical with and without TLB" without_tlb with_tlb

(* Exact hit/miss/flush accounting for a scripted access sequence. *)
let test_tlb_counters () =
  let a = Address_space.create () in
  Address_space.map a ~addr:base ~len:(4096 * 2) ();
  let f0 = Address_space.tlb_flush_count a in
  ignore (Address_space.load_byte a ~pkru:all base);
  (* miss *)
  ignore (Address_space.load_byte a ~pkru:all (base + 1));
  (* hit *)
  Address_space.store_byte a ~pkru:all (base + 2) 'x';
  (* hit *)
  ignore (Address_space.load_byte a ~pkru:all (base + 4096));
  (* miss *)
  ignore (Address_space.load_byte a ~pkru:all base);
  (* hit *)
  Alcotest.(check int) "misses" 2 (Address_space.tlb_miss_count a);
  Alcotest.(check int) "hits" 3 (Address_space.tlb_hit_count a);
  Alcotest.(check int) "accesses = hits + misses"
    (Address_space.access_count a)
    (Address_space.tlb_hit_count a + Address_space.tlb_miss_count a);
  Address_space.mprotect a ~addr:base ~len:4096 Page.rw;
  Alcotest.(check int) "mprotect flushes" (f0 + 1)
    (Address_space.tlb_flush_count a);
  ignore (Address_space.load_byte a ~pkru:all base);
  (* miss: generation bumped *)
  Alcotest.(check int) "re-walk after flush" 3
    (Address_space.tlb_miss_count a)

(* A TLB-disabled space counts no hits and the same accesses. *)
let test_tlb_disabled_equivalence () =
  let run tlb =
    let a = Address_space.create ~tlb () in
    Address_space.map a ~addr:base ~len:(4096 * 4) ();
    let data = Bytes.init 6000 (fun i -> Char.chr (i mod 256)) in
    Address_space.store_bytes a ~pkru:all base data;
    let got = Address_space.load_bytes a ~pkru:all base 6000 in
    Alcotest.(check bytes) "data identical" data got;
    Address_space.access_count a
  in
  Alcotest.(check int) "access counts identical" (run false) (run true);
  let a = Address_space.create ~tlb:false () in
  Address_space.map a ~addr:base ~len:4096 ();
  ignore (Address_space.load_byte a ~pkru:all base);
  ignore (Address_space.load_byte a ~pkru:all base);
  Alcotest.(check int) "no hits when disabled" 0 (Address_space.tlb_hit_count a);
  Alcotest.(check int) "no misses when disabled" 0
    (Address_space.tlb_miss_count a)

(* Global Sim.Stats counters: misses are pushed immediately, hits are
   derived and synced on flush / tlb_hit_count reads. *)
let test_tlb_stats_counters () =
  let a = fresh_mapped () in
  let miss0 = Sim.Stats.counter_value "mem.tlb.miss" in
  let hit0 = Sim.Stats.counter_value "mem.tlb.hit" in
  ignore (Address_space.load_byte a ~pkru:all base);
  (* miss *)
  ignore (Address_space.load_byte a ~pkru:all base);
  (* hit *)
  ignore (Address_space.load_byte a ~pkru:all base);
  (* hit *)
  Alcotest.(check int) "global miss counter immediate" (miss0 + 1)
    (Sim.Stats.counter_value "mem.tlb.miss");
  Alcotest.(check int) "hit counter deferred" hit0
    (Sim.Stats.counter_value "mem.tlb.hit");
  Alcotest.(check int) "local hits" 2 (Address_space.tlb_hit_count a);
  Alcotest.(check int) "hit counter synced by read" (hit0 + 2)
    (Sim.Stats.counter_value "mem.tlb.hit");
  (* A flush also syncs pending hits. *)
  ignore (Address_space.load_byte a ~pkru:all (base + 1));
  Address_space.mprotect a ~addr:base ~len:4096 Page.rw;
  Alcotest.(check int) "hit counter synced by flush" (hit0 + 3)
    (Sim.Stats.counter_value "mem.tlb.hit")

(* --- WFD layout --- *)

let test_layout_disjoint_regions () =
  let regions =
    [ Layout.visor_code; Layout.libos_code; Layout.libos_heap; Layout.trampoline ]
    @ List.init 4 Layout.function_slot
  in
  let rec pairwise = function
    | [] -> ()
    | r :: rest ->
        List.iter
          (fun r2 ->
            let overlap =
              r.Layout.base < Layout.region_end r2 && r2.Layout.base < Layout.region_end r
            in
            if overlap then Alcotest.fail "layout regions overlap")
          rest;
        pairwise rest
  in
  pairwise regions

let test_layout_partitions () =
  Alcotest.(check bool) "libos heap is system" true
    (Layout.in_system_partition Layout.libos_heap.Layout.base);
  Alcotest.(check bool) "trampoline is user" true
    (Layout.in_user_partition Layout.trampoline.Layout.base);
  Alcotest.(check bool) "slot 0 is user" true
    (Layout.in_user_partition (Layout.function_slot 0).Layout.base);
  Alcotest.(check bool) "slot 0 is not system" false
    (Layout.in_system_partition (Layout.function_slot 0).Layout.base)

let test_layout_slot_of_addr () =
  let s2 = Layout.function_slot 2 in
  Alcotest.(check (option int)) "mid-slot" (Some 2)
    (Layout.slot_of_addr (s2.Layout.base + 100));
  Alcotest.(check (option int)) "system addr has no slot" None
    (Layout.slot_of_addr Layout.libos_code.Layout.base);
  Alcotest.(check bool) "slot sub-regions inside slot" true
    (Layout.contains s2 (Layout.function_heap 2).Layout.base
    && Layout.contains s2 (Layout.function_stack 2).Layout.base
    && Layout.contains s2 (Layout.function_code 2).Layout.base);
  match Layout.function_slot Layout.function_slot_count with
  | _ -> Alcotest.fail "out-of-range slot"
  | exception Invalid_argument _ -> ()

(* --- allocator --- *)

let test_alloc_basic () =
  let a = Alloc.create ~base:0x1000 ~size:0x10000 () in
  let b1 = Option.get (Alloc.alloc a ~size:100 ~align:8) in
  let b2 = Option.get (Alloc.alloc a ~size:200 ~align:8) in
  Alcotest.(check bool) "distinct" true (b1 <> b2);
  Alcotest.(check int) "allocated" 300 (Alloc.allocated_bytes a);
  Alloc.free a b1;
  Alloc.free a b2;
  Alcotest.(check int) "all free" 0x10000 (Alloc.free_bytes a);
  Alcotest.(check int) "coalesced to one hole" 1 (Alloc.hole_count a)

let test_alloc_alignment () =
  let a = Alloc.create ~base:0x1001 ~size:0x10000 () in
  let b = Option.get (Alloc.alloc a ~size:64 ~align:4096) in
  Alcotest.(check int) "aligned" 0 (b land 4095)

let test_alloc_exhaustion () =
  let a = Alloc.create ~base:0 ~size:1024 () in
  Alcotest.(check (option int)) "too big" None (Alloc.alloc a ~size:2048 ~align:8);
  let b = Option.get (Alloc.alloc a ~size:1024 ~align:1) in
  Alcotest.(check (option int)) "full" None (Alloc.alloc a ~size:1 ~align:1);
  Alloc.free a b;
  Alcotest.(check bool) "free makes room" true
    (Alloc.alloc a ~size:1024 ~align:1 <> None)

let test_alloc_double_free () =
  let a = Alloc.create ~base:0 ~size:1024 () in
  let b = Option.get (Alloc.alloc a ~size:16 ~align:8) in
  Alloc.free a b;
  match Alloc.free a b with
  | () -> Alcotest.fail "double free must raise"
  | exception Invalid_argument _ -> ()

let test_alloc_reuse_after_free () =
  (* First-fit must reuse the freed front hole. *)
  let a = Alloc.create ~base:0 ~size:4096 () in
  let b1 = Option.get (Alloc.alloc a ~size:512 ~align:8) in
  let _b2 = Option.get (Alloc.alloc a ~size:512 ~align:8) in
  Alloc.free a b1;
  let b3 = Option.get (Alloc.alloc a ~size:256 ~align:8) in
  Alcotest.(check int) "front reused" b1 b3

let test_alloc_best_fit () =
  let a = Alloc.create ~policy:Alloc.Best_fit ~base:0 ~size:4096 () in
  (* Carve holes of 512 and 128 bytes. *)
  let b1 = Option.get (Alloc.alloc a ~size:512 ~align:1) in
  let b2 = Option.get (Alloc.alloc a ~size:64 ~align:1) in
  let b3 = Option.get (Alloc.alloc a ~size:128 ~align:1) in
  let _b4 = Option.get (Alloc.alloc a ~size:64 ~align:1) in
  Alloc.free a b1;
  Alloc.free a b3;
  ignore b2;
  (* A 100-byte request should land in the 128 hole, not the 512 one. *)
  let b5 = Option.get (Alloc.alloc a ~size:100 ~align:1) in
  Alcotest.(check int) "best fit picks smallest hole" b3 b5

let test_alloc_reset () =
  let a = Alloc.create ~base:0 ~size:4096 () in
  ignore (Alloc.alloc a ~size:512 ~align:8);
  Alloc.reset a;
  Alcotest.(check int) "reset frees everything" 4096 (Alloc.free_bytes a);
  Alcotest.(check (list (pair int int))) "no live blocks" [] (Alloc.live_blocks a)

(* qcheck: random alloc/free traces never produce overlapping live
   blocks, and byte accounting stays consistent. *)
let alloc_trace_property =
  QCheck.Test.make ~name:"allocator: no overlap, conserved bytes" ~count:200
    QCheck.(list (pair (int_bound 400) (int_bound 3)))
    (fun ops ->
      let a = Alloc.create ~base:0x4000 ~size:0x8000 () in
      let live = ref [] in
      List.iter
        (fun (size, action) ->
          if action = 0 && !live <> [] then begin
            match !live with
            | addr :: rest ->
                Alloc.free a addr;
                live := rest
            | [] -> ()
          end
          else begin
            let align = List.nth [ 1; 8; 64; 4096 ] action in
            match Alloc.alloc a ~size:(size + 1) ~align with
            | Some addr -> live := addr :: !live
            | None -> ()
          end)
        ops;
      let blocks = Alloc.live_blocks a in
      let rec no_overlap = function
        | (a1, s1) :: ((a2, _) :: _ as rest) -> a1 + s1 <= a2 && no_overlap rest
        | [ _ ] | [] -> true
      in
      no_overlap blocks
      && Alloc.allocated_bytes a + Alloc.free_bytes a <= 0x8000
      && List.for_all (fun (addr, s) -> addr >= 0x4000 && addr + s <= 0xC000) blocks)

let full_free_coalesces_property =
  QCheck.Test.make ~name:"allocator: freeing everything leaves one hole" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 1 500))
    (fun sizes ->
      let a = Alloc.create ~base:0 ~size:0x10000 () in
      let blocks = List.filter_map (fun s -> Alloc.alloc a ~size:s ~align:8) sizes in
      List.iter (Alloc.free a) blocks;
      Alloc.hole_count a = 1 && Alloc.free_bytes a = 0x10000)

let suite =
  [
    Alcotest.test_case "protection keys" `Quick test_prot_keys;
    Alcotest.test_case "pkru rights" `Quick test_pkru_rights;
    Alcotest.test_case "pkru deny-all-except" `Quick test_pkru_deny_all_except;
    Alcotest.test_case "page geometry" `Quick test_page_geometry;
    Alcotest.test_case "aspace roundtrip" `Quick test_aspace_roundtrip;
    Alcotest.test_case "aspace cross-page" `Quick test_aspace_cross_page;
    Alcotest.test_case "aspace int64" `Quick test_aspace_int64;
    Alcotest.test_case "aspace unmapped fault" `Quick test_aspace_unmapped_fault;
    Alcotest.test_case "aspace permission fault" `Quick test_aspace_perm_fault;
    Alcotest.test_case "aspace pkey fault" `Quick test_aspace_pkey_fault;
    Alcotest.test_case "aspace pkey_mprotect" `Quick test_aspace_pkey_mprotect;
    Alcotest.test_case "aspace map conflicts" `Quick test_aspace_map_conflicts;
    Alcotest.test_case "aspace blit/fill" `Quick test_aspace_blit_fill;
    Alcotest.test_case "demand paging" `Quick test_demand_paging;
    Alcotest.test_case "tlb mprotect revoke" `Quick test_tlb_mprotect_revoke;
    Alcotest.test_case "tlb pkey revoke" `Quick test_tlb_pkey_revoke;
    Alcotest.test_case "tlb pkru switch" `Quick test_tlb_pkru_switch;
    Alcotest.test_case "tlb unmap revoke" `Quick test_tlb_unmap_revoke;
    Alcotest.test_case "tlb demand-zero once" `Quick test_tlb_demand_zero_once;
    Alcotest.test_case "tlb counters" `Quick test_tlb_counters;
    Alcotest.test_case "tlb disabled equivalence" `Quick
      test_tlb_disabled_equivalence;
    Alcotest.test_case "tlb stats counters" `Quick test_tlb_stats_counters;
    Alcotest.test_case "layout disjoint regions" `Quick test_layout_disjoint_regions;
    Alcotest.test_case "layout partitions" `Quick test_layout_partitions;
    Alcotest.test_case "layout slot_of_addr" `Quick test_layout_slot_of_addr;
    Alcotest.test_case "alloc basic" `Quick test_alloc_basic;
    Alcotest.test_case "alloc alignment" `Quick test_alloc_alignment;
    Alcotest.test_case "alloc exhaustion" `Quick test_alloc_exhaustion;
    Alcotest.test_case "alloc double free" `Quick test_alloc_double_free;
    Alcotest.test_case "alloc reuse after free" `Quick test_alloc_reuse_after_free;
    Alcotest.test_case "alloc best fit" `Quick test_alloc_best_fit;
    Alcotest.test_case "alloc reset" `Quick test_alloc_reset;
    QCheck_alcotest.to_alcotest alloc_trace_property;
    QCheck_alcotest.to_alcotest full_free_coalesces_property;
  ]
