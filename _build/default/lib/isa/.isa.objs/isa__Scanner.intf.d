lib/isa/scanner.mli: Format Image
