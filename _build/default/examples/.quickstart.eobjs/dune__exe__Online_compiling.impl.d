examples/online_compiling.ml: Baselines Bytes Compile_app Format List Sim Wasm Workloads
