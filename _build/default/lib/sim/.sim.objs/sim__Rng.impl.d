lib/sim/rng.ml: Array Bytes Char Float Int64 Stdlib
