(** Blacklist instruction scanner (the objdump/Dyninst/E9Tool step of
    the paper's threat model, §6).

    Scans the raw byte stream of an image for occurrences of the
    forbidden opcodes: [wrpkru] (0f 01 ef), [syscall] (0f 05),
    [sysenter] (0f 34) and [int imm8] (cd xx).  An occurrence that
    starts exactly on an instruction boundary is an *intentional* use;
    one that straddles boundaries (e.g. bytes of an immediate combining
    with the next opcode) is a *false positive* that ERIM-style binary
    rewriting can eliminate. *)

type opcode = Op_wrpkru | Op_syscall | Op_sysenter | Op_int

val pp_opcode : Format.formatter -> opcode -> unit

type occurrence = {
  opcode : opcode;
  offset : int;  (** Byte offset in the image code. *)
  aligned : bool;  (** Starts on an instruction boundary. *)
}

val scan : Image.t -> occurrence list
(** All occurrences, offset-ordered. *)

val scan_code : string -> boundaries:int list -> occurrence list
(** Scan raw code bytes given instruction-start offsets. *)

type verdict =
  | Clean
  | Rewritable of occurrence list  (** Only unaligned occurrences. *)
  | Rejected of occurrence list  (** Contains intentional forbidden instructions. *)

val verdict : Image.t -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
