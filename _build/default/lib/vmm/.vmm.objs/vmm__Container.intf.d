lib/vmm/container.mli: Sandbox
