open Sim

type node = { node_name : string; cores : int }

type registration = {
  workflow : Workflow.t;
  bindings : (string * Visor.binding) list;
  config : Visor.config option;
}

type t = {
  nodes : node array;
  table : (string, registration) Hashtbl.t;
  admission : Visor.admission_cache;
      (* Shared across endpoints: re-registered or re-invoked images
         skip the blacklist scan (verdicts are pure over content). *)
  code_cache : Wasm.Compile_cache.t;
      (* Likewise shared: repeated invocations of the same endpoint
         host-compile each WASM module once (virtual time unchanged). *)
  mutable rr : int;
  mutable invocations : int;
  mutable last_node : string option;
}

let create ?(nodes = [ { node_name = "node0"; cores = 64 } ]) () =
  if nodes = [] then invalid_arg "Gateway.create: need at least one node";
  {
    nodes = Array.of_list nodes;
    table = Hashtbl.create 8;
    admission = Visor.admission_cache ();
    code_cache = Wasm.Compile_cache.create ();
    rr = 0;
    invocations = 0;
    last_node = None;
  }

let register t ~endpoint ~workflow ~bindings ?config () =
  if Hashtbl.mem t.table endpoint then
    invalid_arg (Printf.sprintf "Gateway.register: endpoint %s already bound" endpoint);
  Hashtbl.replace t.table endpoint { workflow; bindings; config }

let register_json t ~endpoint ~config_json ~bindings () =
  match Workflow.of_string config_json with
  | Error e -> Error e
  | Ok workflow ->
      register t ~endpoint ~workflow ~bindings ();
      Ok ()

let endpoints t = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare

(* Node-local visor config: the node's core count, and the gateway's
   shared admission cache unless the registration pinned its own. *)
let node_config t reg ~cores =
  let base = match reg.config with Some c -> c | None -> Visor.default_config in
  let admission =
    match base.Visor.admission with Some _ as a -> a | None -> Some t.admission
  in
  let code_cache =
    match base.Visor.code_cache with Some _ as c -> c | None -> Some t.code_cache
  in
  { base with Visor.cores; Visor.admission; Visor.code_cache }

let invoke t ~endpoint =
  match Hashtbl.find_opt t.table endpoint with
  | None -> raise Not_found
  | Some reg ->
      let node = t.nodes.(t.rr mod Array.length t.nodes) in
      t.rr <- t.rr + 1;
      t.invocations <- t.invocations + 1;
      t.last_node <- Some node.node_name;
      let config = node_config t reg ~cores:node.cores in
      Visor.run ~config ~workflow:reg.workflow ~bindings:reg.bindings ()

let response_body (report : Visor.report) =
  Jsonlite.to_string
    (Jsonlite.Obj
       [
         ("e2e_us", Jsonlite.Float (Units.to_us report.Visor.e2e));
         ("cold_start_us", Jsonlite.Float (Units.to_us report.Visor.cold_start));
         ("entry_misses", Jsonlite.Int report.Visor.entry_misses);
         ("stdout", Jsonlite.String report.Visor.stdout);
       ])

let handle_http t (req : Netsim.Http.request) =
  let wf_prefix = "/wf/" in
  if String.equal req.Netsim.Http.path "/healthz" then Netsim.Http.ok "ok"
  else if
    String.equal req.Netsim.Http.meth "POST"
    && String.length req.Netsim.Http.path > String.length wf_prefix
    && String.sub req.Netsim.Http.path 0 (String.length wf_prefix) = wf_prefix
  then begin
    let endpoint =
      String.sub req.Netsim.Http.path (String.length wf_prefix)
        (String.length req.Netsim.Http.path - String.length wf_prefix)
    in
    match invoke t ~endpoint with
    | report ->
        Netsim.Http.ok
          ~headers:[ ("Content-Type", "application/json") ]
          (response_body report)
    | exception Not_found -> Netsim.Http.error_response 404 "unknown workflow"
    | exception Visor.Admission_failed reason ->
        Netsim.Http.error_response 403 reason
  end
  else Netsim.Http.error_response 404 "not found"

type burst_report = {
  latencies : Units.time list;
  p99 : Units.time;
  queued : int;
  per_node : (string * int) list;
}

let workflow_width (wf : Workflow.t) =
  List.fold_left
    (fun acc stage ->
      Stdlib.max acc
        (List.fold_left (fun a (n : Workflow.node) -> a + n.Workflow.instances) 0 stage))
    1 (Workflow.stages wf)

let invoke_burst t ~endpoint ~count =
  match Hashtbl.find_opt t.table endpoint with
  | None -> raise Not_found
  | Some reg ->
      let width = workflow_width reg.workflow in
      let n_nodes = Array.length t.nodes in
      (* Concurrent capacity per node: how many workflow instances its
         cores can host at the workflow's widest stage. *)
      let capacity =
        Array.map (fun node -> Stdlib.max 1 (node.cores / Stdlib.max 1 width)) t.nodes
      in
      (* Finish times of in-flight invocations per node, maintained as
         sorted arrays: indexing the (n - capacity)-th finish is O(1)
         and each insert is one binary search + shift, instead of
         re-sorting a list per request. *)
      let inflight = Array.init n_nodes (fun _ -> ref [||]) in
      let insert_sorted cell v =
        let a = !cell in
        let n = Array.length a in
        let lo = ref 0 and hi = ref n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if Units.compare a.(mid) v <= 0 then lo := mid + 1 else hi := mid
        done;
        let b = Array.make (n + 1) v in
        Array.blit a 0 b 0 !lo;
        Array.blit a !lo b (!lo + 1) (n - !lo);
        cell := b
      in
      let per_node = Array.make n_nodes 0 in
      let queued = ref 0 in
      let latencies =
        List.init count (fun i ->
            let node = i mod n_nodes in
            per_node.(node) <- per_node.(node) + 1;
            (* Scaling a warm node: the extra instance maps fresh
               function memory via dlmopen. *)
            let scale_cost =
              if per_node.(node) > 1 then Cost.dlmopen_namespace else Units.zero
            in
            let config = node_config t reg ~cores:t.nodes.(node).cores in
            let report = Visor.run ~config ~workflow:reg.workflow ~bindings:reg.bindings () in
            t.invocations <- t.invocations + 1;
            let busy = !(inflight.(node)) in
            let n_busy = Array.length busy in
            let start =
              if n_busy < capacity.(node) then Units.zero
              else begin
                incr queued;
                (* Wait for the (n - capacity)-th finish. *)
                busy.(n_busy - capacity.(node))
              end
            in
            let finish = Units.add start (Units.add scale_cost report.Visor.e2e) in
            insert_sorted inflight.(node) finish;
            finish)
      in
      let stats = Sim.Stats.create () in
      List.iter (Sim.Stats.add_time stats) latencies;
      {
        latencies;
        p99 = Sim.Stats.percentile_time stats 99.0;
        queued = !queued;
        per_node =
          Array.to_list (Array.mapi (fun i n -> (t.nodes.(i).node_name, n)) per_node);
      }

let invocations t = t.invocations
let last_node t = t.last_node
let admission t = t.admission
let code_cache t = t.code_cache
