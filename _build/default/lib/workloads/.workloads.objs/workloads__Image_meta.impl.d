lib/workloads/image_meta.ml: Bytes Char Datagen Fctx Int32 List Printf Sim String
