open Sim

type spec = {
  cores : int;
  width : int;
  service : Units.time;
  contention : float;
}

type result = {
  p50 : Units.time;
  p99 : Units.time;
  max_inflight : int;
  mean_sojourn : Units.time;
}

let saturation_qps spec =
  float_of_int spec.cores
  /. (float_of_int spec.width *. Units.to_sec spec.service)

(* --- Streaming open-loop arrival process --------------------------- *)

(* A seeded Poisson process yielding one arrival instant per call.
   State is three words, so a 10^5-request schedule costs the same
   memory as a 10-request one; and the draws are exactly those the old
   materialised generators made (one exponential per arrival, then any
   endpoint pick from the same stream), so for equal seeds the
   schedule is bit-identical. *)
type arrivals = {
  arr_rng : Rng.t;
  arr_mean : float;  (* mean inter-arrival gap, seconds *)
  mutable arr_now : float;  (* elapsed virtual seconds *)
  mutable arr_count : int;
}

let arrivals ?(seed = 17) ~qps () =
  if qps <= 0.0 then invalid_arg "Loadgen.arrivals: qps must be positive";
  { arr_rng = Rng.create seed; arr_mean = 1.0 /. qps; arr_now = 0.0; arr_count = 0 }

let next_arrival a =
  a.arr_now <- a.arr_now +. Rng.exponential a.arr_rng ~mean:a.arr_mean;
  a.arr_count <- a.arr_count + 1;
  Units.ns_f (a.arr_now *. 1e9)

let arrivals_rng a = a.arr_rng
let arrivals_count a = a.arr_count

let request_stream ?seed ~qps ~endpoints ~count () =
  if Array.length endpoints = 0 then
    invalid_arg "Loadgen.request_stream: endpoints must be non-empty";
  if count < 0 then invalid_arg "Loadgen.request_stream: negative count";
  let a = arrivals ?seed ~qps () in
  let remaining = ref count in
  fun () ->
    if !remaining <= 0 then None
    else begin
      decr remaining;
      let at = next_arrival a in
      (* A single-endpoint stream draws nothing for the pick, matching
         the single-endpoint materialised generator. *)
      let ep =
        if Array.length endpoints = 1 then endpoints.(0)
        else Rng.pick a.arr_rng endpoints
      in
      Some (ep, at)
    end

let request_stream_until ?seed ~qps ~endpoints ~horizon () =
  if Array.length endpoints = 0 then
    invalid_arg "Loadgen.request_stream_until: endpoints must be non-empty";
  let a = arrivals ?seed ~qps () in
  let finished = ref false in
  fun () ->
    if !finished then None
    else begin
      let at = next_arrival a in
      if Units.( > ) at horizon then begin
        finished := true;
        None
      end
      else begin
        let ep =
          if Array.length endpoints = 1 then endpoints.(0)
          else Rng.pick a.arr_rng endpoints
        in
        Some (ep, at)
      end
    end

let run ?(seed = 17) spec ~qps ~requests =
  if spec.width > spec.cores then invalid_arg "Loadgen.run: width exceeds cores";
  let arr = arrivals ~seed ~qps () in
  let free = Array.make spec.cores Units.zero in
  (* In-flight bookkeeping is a min-heap of finish times: pop the ones
     at or before [start], and what remains is the in-flight set — no
     O(n) membership filter per request. *)
  let finishes : unit Eventq.t = Eventq.create () in
  let sojourns = Stats.create () in
  let max_inflight = ref 0 in
  for _ = 1 to requests do
    let arrival = next_arrival arr in
    (* The request starts when [width] cores are simultaneously free. *)
    Array.sort Units.compare free;
    let start = Units.max arrival free.(spec.width - 1) in
    let rec expire () =
      match Eventq.peek finishes with
      | Some (f, ()) when not (Units.( > ) f start) ->
          ignore (Eventq.pop finishes);
          expire ()
      | _ -> ()
    in
    expire ();
    let inflight = Eventq.length finishes in
    max_inflight := Stdlib.max !max_inflight (inflight + 1);
    let duration =
      Units.scale spec.service (1.0 +. (spec.contention *. float_of_int inflight))
    in
    let finish = Units.add start duration in
    for i = 0 to spec.width - 1 do
      free.(i) <- finish
    done;
    Eventq.push finishes ~at:finish ();
    Stats.add_time sojourns (Units.sub finish arrival)
  done;
  {
    p50 = Stats.percentile_time sojourns 50.0;
    p99 = Stats.percentile_time sojourns 99.0;
    max_inflight = !max_inflight;
    mean_sojourn = Stats.mean_time sojourns;
  }
