(* Tests for as-std and AsBuffer: the syscall path, reference passing,
   fan-out/fan-in, the file fallback and the IFI overhead. *)

open Sim
open Alloystack_core

let fresh_ctx ?features ?(language = Workflow.Rust) () =
  let proc_table = Hostos.Process.create_table () in
  let clock = Clock.create () in
  let wfd = Wfd.create ?features ~proc_table ~clock ~workflow_name:"t" () in
  let thread = Wfd.spawn_function_thread wfd ~clock:(Clock.create ()) in
  (Asstd.make_ctx wfd thread language, wfd)

let second_fn ctx =
  let wfd = ctx.Asstd.wfd in
  let thread = Wfd.spawn_function_thread wfd ~clock:(Clock.create ()) in
  Asstd.make_ctx wfd thread ctx.Asstd.language

(* --- as-std syscall path --- *)

let test_sys_loads_on_demand () =
  let ctx, wfd = fresh_ctx () in
  Alcotest.(check bool) "stdio not loaded" false (Wfd.is_loaded wfd "stdio");
  Asstd.println ctx "hi";
  Alcotest.(check bool) "stdio loaded by call" true (Wfd.is_loaded wfd "stdio");
  Alcotest.(check string) "printed" "hi\n" (Libos_stdio.output wfd);
  Alcotest.(check int) "one miss" 1 wfd.Wfd.entry_misses;
  Asstd.println ctx "again";
  Alcotest.(check int) "then hits" 1 wfd.Wfd.entry_hits

let test_sys_crosses_trampoline () =
  let ctx, wfd = fresh_ctx () in
  Asstd.println ctx "x";
  Alcotest.(check int) "trampoline used" 1 wfd.Wfd.trampoline_crossings;
  Alcotest.(check bool) "back in user mode" false (Trampoline.in_system ctx.Asstd.thread)

let test_file_api () =
  let ctx, _ = fresh_ctx () in
  Asstd.write_whole_file ctx "/in.txt" (Bytes.of_string "content");
  Alcotest.(check bool) "exists" true (Asstd.file_exists ctx "/in.txt");
  Alcotest.(check bytes) "read back" (Bytes.of_string "content")
    (Asstd.read_whole_file ctx "/in.txt");
  let fd = Asstd.open_file ctx ~create:true "/out.txt" in
  ignore (Asstd.write_fd ctx ~fd (Bytes.of_string "fd-write"));
  Asstd.close_fd ctx ~fd;
  let fd = Asstd.open_file ctx "/out.txt" in
  Alcotest.(check bytes) "fd roundtrip" (Bytes.of_string "fd-write")
    (Asstd.read_fd ctx ~fd ~len:100);
  (* Errors surface as Errno.Error. *)
  match Asstd.open_file ctx "/nope" with
  | _ -> Alcotest.fail "open missing must raise"
  | exception Errno.Error (Errno.Enoent, _) -> ()

let test_now_and_compute () =
  let ctx, _ = fresh_ctx () in
  let t1 = Asstd.now_ns ctx in
  Asstd.compute ctx (Units.ms 3);
  let t2 = Asstd.now_ns ctx in
  Alcotest.(check bool) "compute advanced virtual time" true
    (Int64.sub t2 t1 >= 3_000_000L)

let test_compute_factor_python () =
  let ctx, _ = fresh_ctx ~language:Workflow.Python () in
  let ctx = Asstd.with_runtime ctx Wasm.Runtime.wasmtime in
  let before = Clock.now ctx.Asstd.thread.Wfd.clock in
  Asstd.compute ctx (Units.ms 1);
  let spent = Units.sub (Clock.now ctx.Asstd.thread.Wfd.clock) before in
  (* Python through Wasmtime: > 20x native. *)
  Alcotest.(check bool) "python factor" true (Units.( > ) spent (Units.ms 20))

let test_phase_accounting () =
  let ctx, _ = fresh_ctx () in
  Asstd.in_phase ctx "compute" (fun () -> Asstd.compute ctx (Units.ms 2));
  Asstd.in_phase ctx "compute" (fun () -> Asstd.compute ctx (Units.ms 3));
  Asstd.in_phase ctx "io" (fun () -> Asstd.compute ctx (Units.ms 1));
  Alcotest.(check bool) "accumulates" true
    (Units.equal (Asstd.phase_time ctx "compute") (Units.ms 5));
  Alcotest.(check bool) "unknown phase is zero" true
    (Units.equal (Asstd.phase_time ctx "zz") Units.zero)

(* --- AsBuffer: the Fig. 8 demo --- *)

let test_asbuffer_fig8_demo () =
  let ctx_a, _ = fresh_ctx () in
  let ctx_b = second_fn ctx_a in
  let data =
    Fndata.Record [ ("name", Fndata.Str "Euro"); ("year", Fndata.Int 2025L) ]
  in
  ignore (Asbuffer.with_slot ctx_a ~slot:"Conference" data);
  let got =
    Asbuffer.from_slot ctx_b ~slot:"Conference"
      ~expect:(Fndata.Record [ ("name", Fndata.Str ""); ("year", Fndata.Int 0L) ])
  in
  (match (Fndata.record_get got "name", Fndata.record_get got "year") with
  | Fndata.Str "Euro", Fndata.Int 2025L -> ()
  | _ -> Alcotest.fail "EuroSys 2025 expected");
  (* The slot was consumed. *)
  match Asbuffer.from_slot ctx_b ~slot:"Conference" ~expect:data with
  | _ -> Alcotest.fail "second acquire must fail"
  | exception Errno.Error (Errno.Enoent, _) -> ()

let test_asbuffer_fingerprint_protects () =
  let ctx_a, _ = fresh_ctx () in
  let ctx_b = second_fn ctx_a in
  ignore (Asbuffer.with_slot ctx_a ~slot:"s" (Fndata.Int 1L));
  match Asbuffer.from_slot ctx_b ~slot:"s" ~expect:(Fndata.Str "") with
  | _ -> Alcotest.fail "wrong type must fail"
  | exception Errno.Error (Errno.Einval, _) -> ()

let test_asbuffer_raw_roundtrip () =
  let ctx_a, _ = fresh_ctx () in
  let ctx_b = second_fn ctx_a in
  let payload = Sim.Rng.bytes (Sim.Rng.create 3) 100_000 in
  ignore (Asbuffer.with_slot_raw ctx_a ~slot:"bulk" payload);
  Alcotest.(check bytes) "bulk roundtrip" payload (Asbuffer.from_slot_raw ctx_b ~slot:"bulk")

let test_asbuffer_fan_out_fan_in () =
  let ctx_a, _ = fresh_ctx () in
  let ctx_b = second_fn ctx_a in
  let ctx_c = second_fn ctx_a in
  (* Fan-out: A creates two buffers for two downstreams. *)
  ignore (Asbuffer.with_slot_raw ctx_a ~slot:"to_b" (Bytes.of_string "for-b"));
  ignore (Asbuffer.with_slot_raw ctx_a ~slot:"to_c" (Bytes.of_string "for-c"));
  Alcotest.(check bytes) "b gets its slot" (Bytes.of_string "for-b")
    (Asbuffer.from_slot_raw ctx_b ~slot:"to_b");
  Alcotest.(check bytes) "c gets its slot" (Bytes.of_string "for-c")
    (Asbuffer.from_slot_raw ctx_c ~slot:"to_c");
  (* Fan-in: B and C send to A. *)
  ignore (Asbuffer.with_slot_raw ctx_b ~slot:"from_b" (Bytes.of_string "1"));
  ignore (Asbuffer.with_slot_raw ctx_c ~slot:"from_c" (Bytes.of_string "2"));
  Alcotest.(check bytes) "fan-in 1" (Bytes.of_string "1")
    (Asbuffer.from_slot_raw ctx_a ~slot:"from_b");
  Alcotest.(check bytes) "fan-in 2" (Bytes.of_string "2")
    (Asbuffer.from_slot_raw ctx_a ~slot:"from_c")

let test_asbuffer_timing_16mb () =
  (* Fig. 11: 16MB transfer (write + read) on the Rust path should cost
     ~951us of virtual time. *)
  let ctx_a, _ = fresh_ctx () in
  let ctx_b = second_fn ctx_a in
  (* Warm up the mm module so loading does not pollute the measure. *)
  ignore (Asbuffer.with_slot_raw ctx_a ~slot:"warm" (Bytes.make 1 'x'));
  ignore (Asbuffer.from_slot_raw ctx_b ~slot:"warm");
  let payload = Bytes.make (Units.mib 16) 'd' in
  let a0 = Clock.now ctx_a.Asstd.thread.Wfd.clock in
  ignore (Asbuffer.with_slot_raw ctx_a ~slot:"big" payload);
  let write_time = Units.sub (Clock.now ctx_a.Asstd.thread.Wfd.clock) a0 in
  let b0 = Clock.now ctx_b.Asstd.thread.Wfd.clock in
  ignore (Asbuffer.from_slot_raw ctx_b ~slot:"big");
  let read_time = Units.sub (Clock.now ctx_b.Asstd.thread.Wfd.clock) b0 in
  let total_us = Units.to_us (Units.add write_time read_time) in
  Alcotest.(check bool)
    (Printf.sprintf "16MB transfer ~951us (got %.0fus)" total_us)
    true
    (total_us > 900.0 && total_us < 1010.0)

let test_asbuffer_ifi_overhead () =
  let run features =
    let ctx_a, _ = fresh_ctx ~features () in
    let ctx_b = second_fn ctx_a in
    ignore (Asbuffer.with_slot_raw ctx_a ~slot:"warm" (Bytes.make 1 'x'));
    ignore (Asbuffer.from_slot_raw ctx_b ~slot:"warm");
    let payload = Bytes.make 4096 'd' in
    let a0 = Clock.now ctx_a.Asstd.thread.Wfd.clock in
    ignore (Asbuffer.with_slot_raw ctx_a ~slot:"p" payload);
    let b0 = Clock.now ctx_b.Asstd.thread.Wfd.clock in
    ignore (Asbuffer.from_slot_raw ctx_b ~slot:"p");
    Units.add
      (Units.sub (Clock.now ctx_a.Asstd.thread.Wfd.clock) a0)
      (Units.sub (Clock.now ctx_b.Asstd.thread.Wfd.clock) b0)
  in
  let base = run Wfd.default_features in
  let ifi = run { Wfd.default_features with Wfd.ifi = true } in
  Alcotest.(check bool) "IFI costs more" true (Units.( > ) ifi base);
  let overhead = Units.to_us (Units.sub ifi base) in
  (* ~1.2us fixed per side at 4KB => ~2.4us total, the +33.7% of
     Fig. 11 on a ~7us transfer. *)
  Alcotest.(check bool)
    (Printf.sprintf "IFI overhead ~2.4us (got %.1fus)" overhead)
    true
    (overhead > 1.8 && overhead < 3.5)

let test_asbuffer_file_fallback () =
  (* ref_passing disabled: data goes through the FAT image but still
     arrives intact (the Fig. 14 "base" configuration). *)
  let features = { Wfd.default_features with Wfd.ref_passing = false } in
  let ctx_a, wfd = fresh_ctx ~features () in
  let ctx_b = second_fn ctx_a in
  let payload = Bytes.of_string "via the filesystem" in
  ignore (Asbuffer.with_slot_raw ctx_a ~slot:"s" payload);
  Alcotest.(check bool) "file exists in image" true
    (wfd.Wfd.vfs.Fsim.Vfs.exists "/.asbuffer/s");
  Alcotest.(check bytes) "fallback roundtrip" payload
    (Asbuffer.from_slot_raw ctx_b ~slot:"s");
  Alcotest.(check bool) "mm never loaded" false (Wfd.is_loaded wfd "mm")

let test_asbuffer_file_fallback_slower () =
  let time_with features =
    let ctx_a, _ = fresh_ctx ~features () in
    let ctx_b = second_fn ctx_a in
    let payload = Bytes.make (Units.mib 4) 'z' in
    ignore (Asbuffer.with_slot_raw ctx_a ~slot:"s" payload);
    ignore (Asbuffer.from_slot_raw ctx_b ~slot:"s");
    Units.add (Clock.now ctx_a.Asstd.thread.Wfd.clock) (Clock.now ctx_b.Asstd.thread.Wfd.clock)
  in
  let ref_pass = time_with Wfd.default_features in
  let file = time_with { Wfd.default_features with Wfd.ref_passing = false } in
  Alcotest.(check bool) "files much slower than references" true
    (Units.( > ) file (Units.scale ref_pass 2.0))

let test_asbuffer_memory_recovered () =
  let ctx_a, wfd = fresh_ctx () in
  let ctx_b = second_fn ctx_a in
  ignore (Asbuffer.with_slot_raw ctx_a ~slot:"s" (Bytes.make 100_000 'm'));
  ignore (Asbuffer.from_slot_raw ctx_b ~slot:"s");
  Libos.load_module wfd ~clock:(Clock.create ()) "mm";
  Alcotest.(check int) "heap fully recovered" 0 (Libos_mm.live_buffer_bytes wfd)

let asbuffer_roundtrip_property =
  QCheck.Test.make ~name:"asbuffer: random payloads and slot names roundtrip" ~count:60
    QCheck.(pair (string_of_size (Gen.int_range 1 20)) (string_of_size (Gen.int_range 0 50_000)))
    (fun (slot, payload) ->
      QCheck.assume (slot <> "");
      let ctx_a, _ = fresh_ctx () in
      let ctx_b = second_fn ctx_a in
      ignore (Asbuffer.with_slot_raw ctx_a ~slot (Bytes.of_string payload));
      Bytes.to_string (Asbuffer.from_slot_raw ctx_b ~slot) = payload)

let suite =
  [
    Alcotest.test_case "sys loads on demand" `Quick test_sys_loads_on_demand;
    Alcotest.test_case "sys crosses trampoline" `Quick test_sys_crosses_trampoline;
    Alcotest.test_case "file api" `Quick test_file_api;
    Alcotest.test_case "now/compute" `Quick test_now_and_compute;
    Alcotest.test_case "python compute factor" `Quick test_compute_factor_python;
    Alcotest.test_case "phase accounting" `Quick test_phase_accounting;
    Alcotest.test_case "Fig.8 demo" `Quick test_asbuffer_fig8_demo;
    Alcotest.test_case "fingerprint protects" `Quick test_asbuffer_fingerprint_protects;
    Alcotest.test_case "raw roundtrip" `Quick test_asbuffer_raw_roundtrip;
    Alcotest.test_case "fan-out / fan-in" `Quick test_asbuffer_fan_out_fan_in;
    Alcotest.test_case "16MB timing (Fig.11)" `Quick test_asbuffer_timing_16mb;
    Alcotest.test_case "IFI overhead" `Quick test_asbuffer_ifi_overhead;
    Alcotest.test_case "file fallback" `Quick test_asbuffer_file_fallback;
    Alcotest.test_case "file fallback slower" `Quick test_asbuffer_file_fallback_slower;
    Alcotest.test_case "memory recovered" `Quick test_asbuffer_memory_recovered;
    QCheck_alcotest.to_alcotest asbuffer_roundtrip_property;
  ]
