lib/core/libos_fdtab.mli: Errno Netsim Sim Wfd
