lib/isa/rewriter.ml: Format Image Inst Int32 List Scanner
