open Sim

type spec = {
  cores : int;
  width : int;
  service : Units.time;
  contention : float;
}

type result = {
  p50 : Units.time;
  p99 : Units.time;
  max_inflight : int;
  mean_sojourn : Units.time;
}

let saturation_qps spec =
  float_of_int spec.cores
  /. (float_of_int spec.width *. Units.to_sec spec.service)

let run ?(seed = 17) spec ~qps ~requests =
  if spec.width > spec.cores then invalid_arg "Loadgen.run: width exceeds cores";
  let rng = Rng.create seed in
  let free = Array.make spec.cores Units.zero in
  let finishes = ref [] in
  let sojourns = Stats.create () in
  let max_inflight = ref 0 in
  let now = ref 0.0 in
  for _ = 1 to requests do
    now := !now +. Rng.exponential rng ~mean:(1.0 /. qps);
    let arrival = Units.ns_f (!now *. 1e9) in
    (* The request starts when [width] cores are simultaneously free. *)
    Array.sort Units.compare free;
    let start = Units.max arrival free.(spec.width - 1) in
    let inflight = List.length (List.filter (fun f -> Units.( > ) f start) !finishes) in
    max_inflight := Stdlib.max !max_inflight (inflight + 1);
    let duration =
      Units.scale spec.service (1.0 +. (spec.contention *. float_of_int inflight))
    in
    let finish = Units.add start duration in
    for i = 0 to spec.width - 1 do
      free.(i) <- finish
    done;
    finishes := finish :: List.filter (fun f -> Units.( > ) f start) !finishes;
    Stats.add_time sojourns (Units.sub finish arrival)
  done;
  {
    p50 = Stats.percentile_time sojourns 50.0;
    p99 = Stats.percentile_time sojourns 99.0;
    max_inflight = !max_inflight;
    mean_sojourn = Stats.mean_time sojourns;
  }
