(** Content-hash LRU cache over {!Aot.compile}.

    Keys are the MD5 digest of the module's canonical {!Encode}
    serialization, so structurally identical modules share one
    compilation regardless of provenance (warm-pool clones, repeated
    gateway registrations, ...).

    The cache is a host-time optimization only: callers keep charging
    the full virtual compilation cost on every load, so simulated
    results are bit-identical with and without it.  Entries are
    committed only after the compile thunk returns — a thunk that
    raises (validation error, injected loader fault) leaves the cache
    untouched. *)

type t

val create : ?capacity:int -> unit -> t
(** LRU-capped cache. Default capacity 64; raises [Invalid_argument]
    on a non-positive capacity. *)

val global : unit -> t
(** Process-wide shared cache (capacity 128), lazily created. *)

val hash_module : Wmodule.t -> string
(** Hex digest of the module's canonical encoding. *)

val find_or_compile : t -> Wmodule.t -> compile:(unit -> Aot.compiled) -> Aot.compiled
(** Return the cached compilation for [m], or run [compile], cache the
    result and return it.  On overflow the least-recently-used entry is
    evicted first.

    Domain-safe: lookups and commits are mutex-guarded, and a key being
    compiled is marked in-flight so concurrent loads of the same
    content hash wait for the one compilation instead of duplicating it
    (they count as hits).  The lock is released while the compile thunk
    runs, and a failing thunk withdraws the in-flight claim — the next
    waiter becomes the builder, matching sequential retry accounting. *)

val length : t -> int
val hit_count : t -> int
val miss_count : t -> int
val eviction_count : t -> int

(** Global [Sim.Stats] counters: ["wasm.cache.hit"],
    ["wasm.cache.miss"], ["wasm.cache.evict"]. *)
