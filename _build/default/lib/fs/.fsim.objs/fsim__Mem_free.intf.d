lib/fs/mem_free.mli:
