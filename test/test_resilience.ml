(* Failure injection (the §3.1 retry-based fault tolerance) and the §9
   multi-node WFD split. *)

open Sim
open Alloystack_core
open Baselines

let node id = { Workflow.node_id = id; language = Workflow.Rust; instances = 1; required_modules = [] }

let single = Workflow.create_exn ~name:"w" ~nodes:[ node "f" ] ~edges:[]

let flaky_kernel ~failures =
  let remaining = ref failures in
  fun (ctx : Asstd.ctx) ~instance:_ ~total:_ ->
    if !remaining > 0 then begin
      decr remaining;
      failwith "injected fault"
    end;
    Asstd.println ctx "survived"

let config_with retry = { Visor.default_config with Visor.retry }

let test_function_retry_recovers () =
  (* Plan-driven flavour of the flaky kernel: the first two attempts
     crash via injected visor.fn.crash faults instead of a hand-rolled
     failure counter, so the fault schedule is part of the seed. *)
  let plan = Fault.create ~seed:31 () in
  Fault.inject plan ~site:Fault.site_fn_crash (Fault.First 2);
  let ok (ctx : Asstd.ctx) ~instance:_ ~total:_ = Asstd.println ctx "survived" in
  let config =
    { Visor.default_config with Visor.retry = Visor.Retry_function 3; fault = Some plan }
  in
  let report = Visor.run ~config ~workflow:single ~bindings:[ ("f", Visor.bind ok) ] () in
  Alcotest.(check string) "completed" "survived\n" report.Visor.stdout;
  Alcotest.(check int) "two restarts" 2 report.Visor.retries;
  Alcotest.(check int) "both injections fired" 2 (Fault.fired plan ~site:Fault.site_fn_crash)

let test_function_retry_exhausted () =
  let bindings = [ ("f", Visor.bind (flaky_kernel ~failures:99)) ] in
  match
    Visor.run ~config:(config_with (Visor.Retry_function 2)) ~workflow:single ~bindings ()
  with
  | _ -> Alcotest.fail "must fail after retries"
  | exception Visor.Function_failed { fn; attempts; _ } ->
      Alcotest.(check string) "which function" "f" fn;
      Alcotest.(check int) "attempts" 2 attempts

let test_no_retry_propagates () =
  let bindings = [ ("f", Visor.bind (flaky_kernel ~failures:1)) ] in
  match Visor.run ~workflow:single ~bindings () with
  | _ -> Alcotest.fail "must fail without retry"
  | exception Visor.Function_failed { attempts = 1; _ } -> ()

let test_workflow_retry_recovers () =
  let bindings = [ ("f", Visor.bind (flaky_kernel ~failures:1)) ] in
  let report =
    Visor.run ~config:(config_with (Visor.Retry_workflow 3)) ~workflow:single ~bindings ()
  in
  Alcotest.(check string) "completed on rerun" "survived\n" report.Visor.stdout;
  Alcotest.(check bool) "retried" true (report.Visor.retries >= 1)

let test_retry_reuses_slot () =
  (* Heap-unit recovery restarts the function in the *same* slot with a
     fresh heap. *)
  let slots = ref [] in
  let first = ref true in
  let kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    slots := ctx.Asstd.thread.Wfd.fn_slot :: !slots;
    if !first then begin
      first := false;
      failwith "crash"
    end
  in
  ignore
    (Visor.run
       ~config:(config_with (Visor.Retry_function 2))
       ~workflow:single
       ~bindings:[ ("f", Visor.bind kernel) ]
       ());
  match !slots with
  | [ a; b ] -> Alcotest.(check int) "same slot across attempts" b a
  | _ -> Alcotest.fail "expected exactly two attempts"

let test_respawn_gives_fresh_heap () =
  let proc_table = Hostos.Process.create_table () in
  let wfd =
    Wfd.create ~proc_table ~clock:(Clock.create ()) ~workflow_name:"t" ()
  in
  let t0 = Wfd.spawn_function_thread wfd ~clock:(Clock.create ()) in
  let heap = (Mem.Layout.function_heap 0).Mem.Layout.base in
  Mem.Address_space.store_byte wfd.Wfd.aspace ~pkru:t0.Wfd.pkru heap 'x';
  let t1 = Wfd.respawn_function_thread wfd ~slot:0 ~clock:(Clock.create ()) in
  Alcotest.(check int) "same slot" 0 t1.Wfd.fn_slot;
  Alcotest.(check char) "heap zeroed by recovery" '\000'
    (Mem.Address_space.load_byte wfd.Wfd.aspace ~pkru:t1.Wfd.pkru heap);
  match Wfd.respawn_function_thread wfd ~slot:9 ~clock:(Clock.create ()) with
  | _ -> Alcotest.fail "unspawned slot must fail"
  | exception Invalid_argument _ -> ()

let test_retry_preserves_intermediate_data () =
  (* Producer fills a slot; the flaky consumer crashes before touching
     the buffer, restarts, and still finds the data intact. *)
  let produce (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    ignore (Asbuffer.with_slot_raw ctx ~slot:"d" (Bytes.of_string "precious"))
  in
  let first = ref true in
  let consume (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    if !first then begin
      first := false;
      failwith "crash before consuming"
    end;
    let got = Asbuffer.from_slot_raw ctx ~slot:"d" in
    Asstd.println ctx (Bytes.to_string got)
  in
  let wf =
    Workflow.create_exn ~name:"w" ~nodes:[ node "p"; node "c" ] ~edges:[ ("p", "c") ]
  in
  let report =
    Visor.run
      ~config:(config_with (Visor.Retry_function 2))
      ~workflow:wf
      ~bindings:[ ("p", Visor.bind produce); ("c", Visor.bind consume) ]
      ()
  in
  Alcotest.(check string) "data intact across restart" "precious\n" report.Visor.stdout

let test_injected_crash_preserves_intermediate_data () =
  (* Same §3.1 claim, driven by a fault plan: visor.fn.crash occurrence
     1 is the producer (no fire), occurrence 2 is the consumer's first
     attempt, which crashes.  The producer's AsBuffer slot lives in the
     libos heap and must survive the consumer's respawn. *)
  let plan = Fault.create ~seed:33 () in
  Fault.inject plan ~site:Fault.site_fn_crash (Fault.Nth 2);
  let produce (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    ignore (Asbuffer.with_slot_raw ctx ~slot:"d" (Bytes.of_string "precious"))
  in
  let consume (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    Asstd.println ctx (Bytes.to_string (Asbuffer.from_slot_raw ctx ~slot:"d"))
  in
  let wf =
    Workflow.create_exn ~name:"w" ~nodes:[ node "p"; node "c" ] ~edges:[ ("p", "c") ]
  in
  let config =
    { Visor.default_config with Visor.retry = Visor.Retry_function 2; fault = Some plan }
  in
  let report =
    Visor.run ~config ~workflow:wf
      ~bindings:[ ("p", Visor.bind produce); ("c", Visor.bind consume) ]
      ()
  in
  Alcotest.(check string) "buffer survives injected crash" "precious\n" report.Visor.stdout;
  Alcotest.(check int) "one restart" 1 report.Visor.retries;
  Alcotest.(check int) "the planned crash fired" 1 (Fault.fired plan ~site:Fault.site_fn_crash)

let test_fault_isolation_between_wfds () =
  (* One WFD crashing leaves the visor able to run other WFDs. *)
  let bad = [ ("f", Visor.bind (flaky_kernel ~failures:1)) ] in
  (try ignore (Visor.run ~workflow:single ~bindings:bad ()) with
  | Visor.Function_failed _ -> ());
  let ok_kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ = Asstd.println ctx "fine" in
  let report =
    Visor.run ~workflow:single ~bindings:[ ("f", Visor.bind ok_kernel) ] ()
  in
  Alcotest.(check string) "other WFD unaffected" "fine\n" report.Visor.stdout

let test_retry_costs_time () =
  let bindings_flaky = [ ("f", Visor.bind (flaky_kernel ~failures:1)) ] in
  let bindings_ok = [ ("f", Visor.bind (flaky_kernel ~failures:0)) ] in
  let slow =
    Visor.run ~config:(config_with (Visor.Retry_function 2)) ~workflow:single
      ~bindings:bindings_flaky ()
  in
  let fast =
    Visor.run ~config:(config_with (Visor.Retry_function 2)) ~workflow:single
      ~bindings:bindings_ok ()
  in
  Alcotest.(check bool) "restart charged" true (Units.( > ) slow.Visor.e2e fast.Visor.e2e)

(* --- multi-node split --- *)

let test_split_stages_shape () =
  let l = [ 1; 2; 3; 4; 5 ] in
  let parts = As_multinode.split_stages l ~parts:2 in
  Alcotest.(check (list (list int))) "balanced split" [ [ 1; 2 ]; [ 3; 4; 5 ] ] parts;
  Alcotest.(check (list (list int))) "more parts than stages"
    [ [ 1 ]; [ 2 ] ]
    (As_multinode.split_stages [ 1; 2 ] ~parts:5);
  match As_multinode.split_stages l ~parts:0 with
  | _ -> Alcotest.fail "parts 0 invalid"
  | exception Invalid_argument _ -> ()

let split_concat_property =
  QCheck.Test.make ~name:"split_stages: concat preserves order" ~count:200
    QCheck.(pair (list small_int) (int_range 1 8))
    (fun (l, parts) ->
      let split = As_multinode.split_stages l ~parts in
      List.concat split = l
      && (l = [] || List.length split = Stdlib.min parts (List.length l))
      && List.for_all (fun g -> g <> []) split)

let test_multinode_pipe_validates () =
  let app = Workloads.Pipe_app.app ~seed:91 ~size:(256 * 1024) in
  List.iter
    (fun nodes ->
      let m = (As_multinode.make ~nodes ()).Platform.run app in
      Platform.check_validated m)
    [ 1; 2 ]

let test_multinode_chain_validates () =
  let app = Workloads.Function_chain.app ~seed:92 ~payload:(128 * 1024) ~length:6 in
  List.iter
    (fun nodes ->
      let m = (As_multinode.make ~nodes ()).Platform.run app in
      Platform.check_validated m)
    [ 1; 2; 3 ]

let test_multinode_wordcount_validates () =
  let app = Workloads.Wordcount.app ~seed:93 ~size:(128 * 1024) ~instances:2 in
  let m = (As_multinode.make ~nodes:2 ()).Platform.run app in
  Platform.check_validated m

let test_multinode_network_penalty () =
  (* Crossing WFDs costs network time: more nodes, slower chain. *)
  let app = Workloads.Function_chain.app ~seed:94 ~payload:(4 * 1024 * 1024) ~length:6 in
  let e2e nodes = ((As_multinode.make ~nodes ()).Platform.run app).Platform.e2e in
  let one = e2e 1 and three = e2e 3 in
  Alcotest.(check bool) "3 nodes slower than 1" true (Units.( > ) three one);
  (* The penalty is at least the bridge cost of the boundary payloads. *)
  Alcotest.(check bool) "penalty at least one bridge hop" true
    (Units.( > ) (Units.sub three one) (As_multinode.bridge_cost (4 * 1024 * 1024)))

let test_adaptive_selector () =
  (* Small payloads ship directly (fixed storage overhead dominates);
     the selector never costs more than the plain bridge. *)
  Alcotest.(check bool) "small goes network" true (As_adaptive.pick 4096 = `Network);
  List.iter
    (fun len ->
      let adaptive =
        match As_adaptive.pick len with
        | `Network -> As_adaptive.network_cost len
        | `Storage -> As_adaptive.storage_cost len
      in
      Alcotest.(check bool) "never worse than fixed bridge" true
        (Units.( <= ) adaptive (As_multinode.bridge_cost len)))
    [ 1024; 65536; 1024 * 1024; 16 * 1024 * 1024 ]

let test_adaptive_multinode_validates () =
  let app = Workloads.Function_chain.app ~seed:95 ~payload:(512 * 1024) ~length:4 in
  let m = (As_adaptive.make ~nodes:2).Platform.run app in
  Platform.check_validated m;
  (* Adaptive never loses to the fixed-policy split. *)
  let fixed = ((As_multinode.make ~nodes:2 ()).Platform.run app).Platform.e2e in
  Alcotest.(check bool) "adaptive <= fixed" true
    (Units.( <= ) m.Platform.e2e fixed)

let test_bridge_cost_monotonic () =
  Alcotest.(check bool) "grows with size" true
    (Units.( > )
       (As_multinode.bridge_cost (1024 * 1024))
       (As_multinode.bridge_cost 1024))

let suite =
  [
    Alcotest.test_case "function retry recovers" `Quick test_function_retry_recovers;
    Alcotest.test_case "function retry exhausted" `Quick test_function_retry_exhausted;
    Alcotest.test_case "no retry propagates" `Quick test_no_retry_propagates;
    Alcotest.test_case "workflow retry recovers" `Quick test_workflow_retry_recovers;
    Alcotest.test_case "retry reuses slot" `Quick test_retry_reuses_slot;
    Alcotest.test_case "respawn gives fresh heap" `Quick test_respawn_gives_fresh_heap;
    Alcotest.test_case "retry preserves intermediate data" `Quick test_retry_preserves_intermediate_data;
    Alcotest.test_case "injected crash preserves intermediate data" `Quick
      test_injected_crash_preserves_intermediate_data;
    Alcotest.test_case "fault isolation between WFDs" `Quick test_fault_isolation_between_wfds;
    Alcotest.test_case "retry costs time" `Quick test_retry_costs_time;
    Alcotest.test_case "split_stages shape" `Quick test_split_stages_shape;
    QCheck_alcotest.to_alcotest split_concat_property;
    Alcotest.test_case "multinode pipe validates" `Quick test_multinode_pipe_validates;
    Alcotest.test_case "multinode chain validates" `Quick test_multinode_chain_validates;
    Alcotest.test_case "multinode wordcount validates" `Quick test_multinode_wordcount_validates;
    Alcotest.test_case "multinode network penalty" `Quick test_multinode_network_penalty;
    Alcotest.test_case "adaptive selector" `Quick test_adaptive_selector;
    Alcotest.test_case "adaptive multinode validates" `Quick test_adaptive_multinode_validates;
    Alcotest.test_case "bridge cost monotonic" `Quick test_bridge_cost_monotonic;
  ]
