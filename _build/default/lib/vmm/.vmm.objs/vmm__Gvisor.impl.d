lib/vmm/gvisor.ml: Hostos Sandbox Sim Units
