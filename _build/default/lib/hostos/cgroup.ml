type t = { quota : float }

let create ~quota =
  if quota <= 0.0 || quota > 1.0 then
    invalid_arg "Cgroup.create: quota must be in (0, 1]";
  { quota }

let unlimited = { quota = 1.0 }

let quota t = t.quota

(* Three cgroupfs writes through the VFS. *)
let setup_cost = Sim.Units.us 85

let stretch t d = Sim.Units.scale d (1.0 /. t.quota)

let throttled_share t = 1.0 -. t.quota
