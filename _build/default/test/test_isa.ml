(* Tests for the instruction scanner and ERIM-style rewriter
   (threat-model admission, §6 of the paper). *)

open Isa

let image insts = Image.create ~name:"test" ~toolchain:Image.Rust_as_std insts

let clean_insts = [ Inst.Mov_reg; Inst.Add; Inst.Load; Inst.Store; Inst.Ret ]

let test_encodings () =
  Alcotest.(check string) "wrpkru bytes" "\x0f\x01\xef" (Inst.encode Inst.Wrpkru);
  Alcotest.(check string) "syscall bytes" "\x0f\x05" (Inst.encode Inst.Syscall);
  Alcotest.(check string) "sysenter bytes" "\x0f\x34" (Inst.encode Inst.Sysenter);
  Alcotest.(check string) "int bytes" "\xcd\x80" (Inst.encode (Inst.Int 0x80));
  Alcotest.(check string) "nop" "\x90" (Inst.encode Inst.Nop);
  Alcotest.(check int) "mov imm length" 5 (Inst.encoded_length (Inst.Mov_imm 7l))

let test_blacklist_classification () =
  Alcotest.(check bool) "wrpkru blacklisted" true (Inst.is_blacklisted Inst.Wrpkru);
  Alcotest.(check bool) "int blacklisted" true (Inst.is_blacklisted (Inst.Int 3));
  Alcotest.(check bool) "mov allowed" false (Inst.is_blacklisted Inst.Mov_reg)

let test_image_boundaries () =
  let img = image [ Inst.Nop; Inst.Mov_imm 1l; Inst.Ret ] in
  Alcotest.(check (list int)) "boundaries" [ 0; 1; 6 ] (Image.boundaries img);
  Alcotest.(check int) "code size" 7 (Image.code_size img);
  Alcotest.(check int) "inst count" 3 (Image.inst_count img)

let test_scan_clean () =
  Alcotest.(check int) "clean image: no hits" 0
    (List.length (Scanner.scan (image clean_insts)));
  match Scanner.verdict (image clean_insts) with
  | Scanner.Clean -> ()
  | _ -> Alcotest.fail "expected Clean"

let test_scan_intentional () =
  let img = image [ Inst.Mov_reg; Inst.Syscall; Inst.Ret ] in
  (match Scanner.scan img with
  | [ occ ] ->
      Alcotest.(check bool) "aligned" true occ.Scanner.aligned;
      Alcotest.(check int) "offset" 2 occ.Scanner.offset
  | occs -> Alcotest.fail (Printf.sprintf "expected 1 occurrence, got %d" (List.length occs)));
  match Scanner.verdict img with
  | Scanner.Rejected [ _ ] -> ()
  | _ -> Alcotest.fail "expected Rejected"

(* An immediate whose byte pattern embeds a forbidden opcode: mov with
   imm32 = ...0f 05... unaligned syscall. *)
let sneaky_imm =
  (* LE bytes of the immediate: ef 01 0f b8? We want "0f 05" inside the
     image stream.  mov_imm encodes as b8 xx xx xx xx; choose the
     immediate so bytes 1-2 are 0f 05: 0x??_??_05_0f. *)
  Inst.Mov_imm 0x11_22_05_0Fl

let test_scan_unaligned () =
  let img = image [ sneaky_imm; Inst.Ret ] in
  let occs = Scanner.scan img in
  Alcotest.(check bool) "found embedded pattern" true
    (List.exists (fun (o : Scanner.occurrence) -> o.Scanner.opcode = Scanner.Op_syscall) occs);
  Alcotest.(check bool) "unaligned" true
    (List.for_all (fun (o : Scanner.occurrence) -> not o.Scanner.aligned) occs);
  match Scanner.verdict img with
  | Scanner.Rewritable _ -> ()
  | v -> Alcotest.fail (Format.asprintf "expected Rewritable, got %a" Scanner.pp_verdict v)

let test_rewrite_unaligned () =
  let img = image [ sneaky_imm; Inst.Ret; Inst.Mov_reg ] in
  let rewritten = Rewriter.rewrite img in
  (match Scanner.verdict rewritten with
  | Scanner.Clean -> ()
  | v -> Alcotest.fail (Format.asprintf "rewrite left %a" Scanner.pp_verdict v));
  (* Rewriting is idempotent on clean images. *)
  let again = Rewriter.rewrite rewritten in
  Alcotest.(check int) "idempotent" (Image.inst_count rewritten) (Image.inst_count again)

let test_rewrite_rejects_intentional () =
  let img = image [ Inst.Wrpkru; Inst.Ret ] in
  match Rewriter.rewrite img with
  | _ -> Alcotest.fail "must not rewrite intentional wrpkru"
  | exception Rewriter.Unrewritable _ -> ()

let test_admit_pipeline () =
  (match Rewriter.admit (image clean_insts) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Rewriter.admit (image [ Inst.Sysenter ]) with
  | Ok _ -> Alcotest.fail "sysenter must be rejected"
  | Error _ -> ());
  match Rewriter.admit (image [ sneaky_imm; Inst.Ret ]) with
  | Ok img -> begin
      match Scanner.verdict img with
      | Scanner.Clean -> ()
      | _ -> Alcotest.fail "admitted image must be clean"
    end
  | Error e -> Alcotest.fail e

(* qcheck: for random non-blacklisted instruction streams, admit always
   succeeds and produces a clean image. *)
let benign_inst_gen =
  QCheck.Gen.(
    oneof
      [
        return Inst.Nop;
        map (fun v -> Inst.Mov_imm (Int32.of_int v)) (int_bound 0xFFFFFF);
        return Inst.Mov_reg;
        return Inst.Add;
        return Inst.Load;
        return Inst.Store;
        map (fun v -> Inst.Jmp v) (int_bound 127);
        map (fun s -> Inst.Call ("f" ^ string_of_int s)) (int_bound 9);
        return Inst.Ret;
      ])

let admit_property =
  QCheck.Test.make ~name:"rewriter: benign streams always admit clean" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 40) benign_inst_gen))
    (fun insts ->
      match Rewriter.admit (image insts) with
      | Ok admitted -> Scanner.verdict admitted = Scanner.Clean
      | Error _ -> false)

(* Dangerous immediates specifically: embed each forbidden pattern
   into mov immediates and check the rewriter clears them. *)
let embedded_patterns =
  [ 0x0005_0F00l; 0x0001_0F00l (* prefix of wrpkru *); 0x0034_0F00l; 0x00_00_CD_00l ]

let test_rewrite_embedded_each () =
  List.iter
    (fun imm ->
      let img = image [ Inst.Mov_imm imm; Inst.Mov_imm imm; Inst.Ret ] in
      match Rewriter.admit img with
      | Ok admitted ->
          if Scanner.verdict admitted <> Scanner.Clean then
            Alcotest.fail (Printf.sprintf "imm %lx not cleaned" imm)
      | Error e -> Alcotest.fail e)
    embedded_patterns

(* --- ELF-like container --- *)

let test_elf_roundtrip () =
  let img = image [ Inst.Mov_imm 7l; Inst.Call "open"; Inst.Ret ] in
  let elf = Elf.of_image ~entry:"main" img in
  let loaded = Elf.load (Elf.store elf) in
  Alcotest.(check string) "entry" "main" loaded.Elf.entry;
  Alcotest.(check string) "text preserved" (Image.code img) loaded.Elf.text;
  Alcotest.(check int) "symbols per instruction" 3 (List.length loaded.Elf.symbols);
  Alcotest.(check bool) "toolchain" true (loaded.Elf.toolchain = Image.Rust_as_std)

let test_elf_scan_agrees_with_image () =
  let imgs =
    [
      image clean_insts;
      image [ sneaky_imm; Inst.Ret ];
      image [ Inst.Mov_reg; Inst.Syscall ];
    ]
  in
  List.iter
    (fun img ->
      let elf = Elf.load (Elf.store (Elf.of_image img)) in
      let direct = Scanner.scan img in
      let via_elf = Elf.scan_bytes elf in
      Alcotest.(check int) "same occurrence count" (List.length direct)
        (List.length via_elf);
      List.iter2
        (fun (a : Scanner.occurrence) (b : Scanner.occurrence) ->
          Alcotest.(check int) "same offsets" a.Scanner.offset b.Scanner.offset;
          Alcotest.(check bool) "same alignment" a.Scanner.aligned b.Scanner.aligned)
        direct via_elf)
    imgs

let test_elf_text_decodes_back () =
  let img = image [ Inst.Mov_imm 42l; Inst.Load; Inst.Store; Inst.Jmp 4; Inst.Ret ] in
  let elf = Elf.of_image img in
  match Elf.text_image ~name:"back" elf with
  | None -> Alcotest.fail "text must decode"
  | Some back ->
      Alcotest.(check string) "byte-for-byte equal" (Image.code img) (Image.code back)

let test_elf_rejects_malformed () =
  List.iter
    (fun b ->
      match Elf.load b with
      | _ -> Alcotest.fail "malformed must raise"
      | exception Elf.Malformed _ -> ())
    [
      Bytes.of_string "";
      Bytes.of_string "ELF!";
      Bytes.sub (Elf.store (Elf.of_image (image clean_insts))) 0 10;
      Bytes.cat (Elf.store (Elf.of_image (image clean_insts))) (Bytes.of_string "x");
    ]

let test_elf_foreign_text () =
  (* Arbitrary bytes that do not decode: text_image is None but
     byte-level scanning still works. *)
  let elf =
    { Elf.toolchain = Image.Native_c; entry = "m"; symbols = [ { Elf.sym_name = "m"; offset = 0 } ];
      text = "ÿþ" }
  in
  Alcotest.(check bool) "undecodable" true (Elf.text_image ~name:"f" elf = None);
  Alcotest.(check bool) "scanner still sees the syscall bytes" true
    (List.exists (fun (o : Scanner.occurrence) -> o.Scanner.opcode = Scanner.Op_syscall)
       (Elf.scan_bytes elf))

let elf_roundtrip_property =
  QCheck.Test.make ~name:"elf: store/load roundtrip preserves scanning" ~count:150
    (QCheck.make QCheck.Gen.(list_size (int_range 0 30) benign_inst_gen))
    (fun insts ->
      let img = image insts in
      let elf = Elf.load (Elf.store (Elf.of_image img)) in
      elf.Elf.text = Image.code img
      && List.length (Elf.scan_bytes elf) = List.length (Scanner.scan img))

let suite =
  [
    Alcotest.test_case "opcode encodings" `Quick test_encodings;
    Alcotest.test_case "blacklist classification" `Quick test_blacklist_classification;
    Alcotest.test_case "image boundaries" `Quick test_image_boundaries;
    Alcotest.test_case "scan clean image" `Quick test_scan_clean;
    Alcotest.test_case "scan intentional syscall" `Quick test_scan_intentional;
    Alcotest.test_case "scan unaligned pattern" `Quick test_scan_unaligned;
    Alcotest.test_case "rewrite unaligned" `Quick test_rewrite_unaligned;
    Alcotest.test_case "rewrite rejects intentional" `Quick test_rewrite_rejects_intentional;
    Alcotest.test_case "admission pipeline" `Quick test_admit_pipeline;
    Alcotest.test_case "rewrite embedded patterns" `Quick test_rewrite_embedded_each;
    QCheck_alcotest.to_alcotest admit_property;
    Alcotest.test_case "elf roundtrip" `Quick test_elf_roundtrip;
    Alcotest.test_case "elf scan agrees" `Quick test_elf_scan_agrees_with_image;
    Alcotest.test_case "elf text decodes back" `Quick test_elf_text_decodes_back;
    Alcotest.test_case "elf rejects malformed" `Quick test_elf_rejects_malformed;
    Alcotest.test_case "elf foreign text" `Quick test_elf_foreign_text;
    QCheck_alcotest.to_alcotest elf_roundtrip_property;
  ]
