type errno = Success | Badf | Inval | Noent | Fault

let errno_code = function
  | Success -> 0L
  | Badf -> 8L
  | Inval -> 28L
  | Noent -> 44L
  | Fault -> 21L

type system = {
  sys_write : fd:int -> bytes -> int;
  sys_read : fd:int -> int -> bytes;
  sys_open : string -> int;
  sys_close : int -> bool;
  sys_clock_now : unit -> int64;
  sys_random : int -> bytes;
  sys_args : unit -> string list;
  sys_proc_exit : int -> unit;
  sys_buffer_register : string -> bytes -> bool;
  sys_access_buffer : string -> bytes option;
}

let null_system =
  {
    sys_write = (fun ~fd:_ _ -> -1);
    sys_read = (fun ~fd:_ _ -> Bytes.empty);
    sys_open = (fun _ -> -1);
    sys_close = (fun _ -> false);
    sys_clock_now = (fun () -> 0L);
    sys_random = (fun n -> Bytes.make n '\000');
    sys_args = (fun () -> []);
    sys_proc_exit = (fun _ -> ());
    sys_buffer_register = (fun _ _ -> false);
    sys_access_buffer = (fun _ -> None);
  }

let import_names =
  [
    "fd_write";
    "fd_read";
    "path_open";
    "fd_close";
    "clock_time_get";
    "random_get";
    "args_sizes_get";
    "proc_exit";
    "buffer_register";
    "access_buffer";
  ]

let index_of name =
  let rec go i = function
    | [] -> raise Not_found
    | n :: _ when String.equal n name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 import_names

(* Build the import list generically over memory accessors, then
   specialise for interpreter and AOT instances. *)
let make_imports (type inst) ~(read : inst -> int -> int -> bytes)
    ~(write : inst -> int -> bytes -> unit) (sys : system) :
    (string * (inst -> int64 array -> int64)) list =
  let i64 = Int64.of_int in
  let int v = Int64.to_int v in
  [
    ( "fd_write",
      fun m args ->
        let fd = int args.(0) and ptr = int args.(1) and len = int args.(2) in
        i64 (sys.sys_write ~fd (read m ptr len)) );
    ( "fd_read",
      fun m args ->
        let fd = int args.(0) and ptr = int args.(1) and len = int args.(2) in
        let data = sys.sys_read ~fd len in
        write m ptr data;
        i64 (Bytes.length data) );
    ( "path_open",
      fun m args ->
        let ptr = int args.(0) and len = int args.(1) in
        i64 (sys.sys_open (Bytes.to_string (read m ptr len))) );
    ("fd_close", fun _ args -> if sys.sys_close (int args.(0)) then 0L else errno_code Badf);
    ("clock_time_get", fun _ _ -> sys.sys_clock_now ());
    ( "random_get",
      fun m args ->
        let ptr = int args.(0) and len = int args.(1) in
        write m ptr (sys.sys_random len);
        0L );
    ("args_sizes_get", fun _ _ -> i64 (List.length (sys.sys_args ())));
    ( "proc_exit",
      fun _ args ->
        sys.sys_proc_exit (int args.(0));
        0L );
    ( (* buffer_register(slot_ptr, slot_len, packed) where
         packed = data_ptr << 32 | data_len. *)
      "buffer_register",
      fun m args ->
        let slot = Bytes.to_string (read m (int args.(0)) (int args.(1))) in
        let packed = args.(2) in
        let data_ptr = Int64.to_int (Int64.shift_right_logical packed 32) in
        let data_len = Int64.to_int (Int64.logand packed 0xFFFF_FFFFL) in
        if sys.sys_buffer_register slot (read m data_ptr data_len) then 0L
        else errno_code Inval );
    ( (* access_buffer(slot_ptr, slot_len, dest_ptr) -> length or -1. *)
      "access_buffer",
      fun m args ->
        let slot = Bytes.to_string (read m (int args.(0)) (int args.(1))) in
        match sys.sys_access_buffer slot with
        | None -> -1L
        | Some data ->
            write m (int args.(2)) data;
            i64 (Bytes.length data) );
  ]

let interp_imports sys =
  make_imports ~read:Interp.read_memory ~write:Interp.write_memory sys

let aot_imports sys = make_imports ~read:Aot.read_memory ~write:Aot.write_memory sys
