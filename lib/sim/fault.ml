type trigger =
  | Always
  | Probability of float
  | Nth of int
  | First of int
  | Every of int

exception Injected of { site : string }

type site_state = {
  mutable trigger : trigger;
  mutable max_fires : int option;
  rng : Rng.t;
  mutable occurrences : int;
  mutable fired : int;
}

type t = {
  mutable plan_seed : int;
  trace : Trace.t option;
      (** [None] routes fault records to [Trace.current ()] at record
          time, so a plan shared with parallel tasks traces into each
          task's shard rather than across domains into one buffer. *)
  table : (string, site_state) Hashtbl.t;
}

let site_link_tx = "net.link.tx"
let site_link_delay = "net.link.delay"
let site_link_corrupt = "net.link.corrupt"
let site_vfs_read = "vfs.read"
let site_vfs_write = "vfs.write"
let site_mem_alloc = "mem.alloc"
let site_loader_load = "loader.load"
let site_fn_crash = "visor.fn.crash"
let site_fn_hang = "visor.fn.hang"

let create ?trace ~seed () = { plan_seed = seed; trace; table = Hashtbl.create 8 }

let seed t = t.plan_seed

let trace_of t = match t.trace with Some tr -> tr | None -> Trace.current ()

(* FNV-1a over the site name, independent of Hashtbl.hash so the
   per-site stream survives compiler upgrades. *)
let site_hash site =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF) site;
  !h

let site_seed t site = t.plan_seed lxor (site_hash site * 0x9E3779B1)
let site_rng t site = Rng.create (site_seed t site)

let validate site = function
  | Always -> ()
  | Probability p ->
      if p < 0.0 || p > 1.0 then
        invalid_arg (Printf.sprintf "Fault.inject %s: probability %g not in [0, 1]" site p)
  | Nth n | First n | Every n ->
      if n <= 0 then
        invalid_arg (Printf.sprintf "Fault.inject %s: count must be positive" site)

let inject t ~site ?max_fires trigger =
  validate site trigger;
  (match max_fires with
  | Some m when m <= 0 -> invalid_arg "Fault.inject: max_fires must be positive"
  | _ -> ());
  Hashtbl.replace t.table site
    { trigger; max_fires; rng = site_rng t site; occurrences = 0; fired = 0 }

let check ?(at = Units.zero) t ~site =
  match Hashtbl.find_opt t.table site with
  | None -> false
  | Some st ->
      st.occurrences <- st.occurrences + 1;
      (* Draw before the cap check so the stream stays aligned with the
         occurrence count whatever max_fires is. *)
      let scheduled =
        match st.trigger with
        | Always -> true
        | Probability p -> Rng.float st.rng 1.0 < p
        | Nth n -> st.occurrences = n
        | First n -> st.occurrences <= n
        | Every n -> st.occurrences mod n = 0
      in
      let capped =
        match st.max_fires with Some m -> st.fired >= m | None -> false
      in
      let fires = scheduled && not capped in
      if fires then begin
        st.fired <- st.fired + 1;
        Trace.recordf (trace_of t) ~at ~category:"fault" ~label:site
          "injected #%d (occurrence %d)" st.fired st.occurrences
      end;
      fires

let fire_exn ?at t ~site = if check ?at t ~site then raise (Injected { site })

let occurrences t ~site =
  match Hashtbl.find_opt t.table site with Some st -> st.occurrences | None -> 0

let fired t ~site =
  match Hashtbl.find_opt t.table site with Some st -> st.fired | None -> 0

let total_fired t = Hashtbl.fold (fun _ st acc -> acc + st.fired) t.table 0

let sites t =
  Hashtbl.fold (fun site _ acc -> site :: acc) t.table [] |> List.sort compare

let schedule t =
  Hashtbl.fold (fun site st acc -> (site, st.fired) :: acc) t.table []
  |> List.sort compare

let record_recovery t ~at ~site detail =
  Trace.recordf (trace_of t) ~at ~category:"fault" ~label:site "recovered: %s" detail

(* Split a per-task plan off [t].  The child's seed is derived from
   (plan seed, task index) alone — never from host scheduling — so the
   same task draws the same fault stream whatever the interleaving.
   Site states are re-derived from the child's seed with fresh
   counters. *)
let derive_child_seed t ~index =
  Int64.to_int
    (Rng.mix
       (Int64.add (Int64.of_int t.plan_seed)
          (Int64.mul Rng.golden_gamma (Int64.of_int (index + 1)))))

(* Make [c]'s rule table mirror [parent]'s with counters zeroed and
   site streams re-derived from [c]'s (already set) seed.  Cells are
   mutated in place where they exist — the point of the child pool:
   re-fitting a recycled child for the same parent plan allocates
   nothing. *)
let refit c parent =
  let stale =
    Hashtbl.fold
      (fun site _ acc ->
        if Hashtbl.mem parent.table site then acc else site :: acc)
      c.table []
  in
  List.iter (Hashtbl.remove c.table) stale;
  Hashtbl.iter
    (fun site (st : site_state) ->
      match Hashtbl.find_opt c.table site with
      | Some cst ->
          cst.trigger <- st.trigger;
          cst.max_fires <- st.max_fires;
          Rng.reseed cst.rng (site_seed c site);
          cst.occurrences <- 0;
          cst.fired <- 0
      | None ->
          Hashtbl.replace c.table site
            {
              trigger = st.trigger;
              max_fires = st.max_fires;
              rng = site_rng c site;
              occurrences = 0;
              fired = 0;
            })
    parent.table

let child t ~index =
  let c = { plan_seed = derive_child_seed t ~index; trace = None; table = Hashtbl.create 8 } in
  refit c t;
  c

(* --- Child-plan pool -----------------------------------------------

   Serving derives one child plan per request; the table and per-site
   cells are identical in shape across requests of the same parent
   plan, so recycling them removes a Hashtbl + N site records + N RNG
   cells per request.  [acquire_child] scrubs on acquire ([refit]
   zeroes counters and reseeds every stream), so a crashed request's
   counters can never leak into the next request through the pool. *)

let child_pool : t list ref = ref []
let child_pool_len = ref 0
let child_pool_mu = Mutex.create ()
let child_pool_cap = 4096

let acquire_child t ~index =
  let seed = derive_child_seed t ~index in
  let pooled =
    Mutex.protect child_pool_mu (fun () ->
        match !child_pool with
        | c :: rest ->
            child_pool := rest;
            decr child_pool_len;
            Some c
        | [] -> None)
  in
  match pooled with
  | Some c ->
      c.plan_seed <- seed;
      refit c t;
      c
  | None ->
      let c = { plan_seed = seed; trace = None; table = Hashtbl.create 8 } in
      refit c t;
      c

let release_child c =
  Mutex.protect child_pool_mu (fun () ->
      if !child_pool_len < child_pool_cap then begin
        child_pool := c :: !child_pool;
        incr child_pool_len
      end)

(* Fold a finished child's occurrence/fire counts back into the parent
   so plan-level accounting ([fired], [schedule], ...) covers the whole
   run.  Sums are order-insensitive; call at a deterministic join
   anyway so traces stay aligned. *)
let absorb t c =
  Hashtbl.fold (fun site st acc -> (site, st) :: acc) c.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (site, (cst : site_state)) ->
         match Hashtbl.find_opt t.table site with
         | Some st ->
             st.occurrences <- st.occurrences + cst.occurrences;
             st.fired <- st.fired + cst.fired
         | None ->
             (* Copy, never alias: [c] may be released to the child
                pool after this and its cells re-fitted in place. *)
             Hashtbl.replace t.table site
               {
                 trigger = cst.trigger;
                 max_fires = cst.max_fires;
                 rng = Rng.copy cst.rng;
                 occurrences = cst.occurrences;
                 fired = cst.fired;
               })

let reset t =
  let fresh =
    Hashtbl.fold
      (fun site st acc ->
        (site, { st with rng = site_rng t site; occurrences = 0; fired = 0 }) :: acc)
      t.table []
  in
  Hashtbl.reset t.table;
  List.iter (fun (site, st) -> Hashtbl.replace t.table site st) fresh
