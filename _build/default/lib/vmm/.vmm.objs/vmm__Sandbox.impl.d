lib/vmm/sandbox.ml: Clock Format Hostos List Sim Units
