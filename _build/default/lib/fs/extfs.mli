(** Extent-based filesystem — the Linux ext4 stand-in.

    Files are stored as a handful of contiguous extents allocated
    greedily, so reads walk extents (few lookups) rather than a
    per-cluster chain.  Calibrated to Table 4: read 1351 MB/s, write
    1282 MB/s. *)

type t

val format : Blockdev.t -> t
val write_file : t -> ?clock:Sim.Clock.t -> string -> bytes -> unit
val read_file : t -> ?clock:Sim.Clock.t -> string -> bytes
val file_size : t -> string -> int
val exists : t -> string -> bool
val delete : t -> string -> unit
val list_files : t -> string list
val extent_count : t -> string -> int
(** Number of extents of a file (tests: sequential writes on a fresh
    device should need exactly one). *)
