lib/vmm/microvm.mli: Sandbox
