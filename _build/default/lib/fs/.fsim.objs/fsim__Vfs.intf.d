lib/fs/vfs.mli: Extfs Fat Ramfs Sim
