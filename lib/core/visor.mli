(** as-visor: the global runtime layer (§3.3).

    Owns workflow execution end to end: the watchdog receives the
    invocation event, the orchestrator instantiates a WFD, spawns one
    thread per function instance stage by stage (threads are cloned
    Linux threads scheduled on the host's cores), and destroys the WFD
    when the workflow completes.  Before anything runs, function images
    go through blacklist admission (§6).

    {!Server} layers multi-tenant serving on top: a warm pool of
    template WFDs cloned per request, a content-hash admission cache,
    and concurrent workflow execution interleaved over shared cores in
    virtual time. *)

type kernel = Asstd.ctx -> instance:int -> total:int -> unit
(** A user function body: receives its as-std context plus its parallel
    instance coordinates. *)

type binding = { kernel : kernel; image : Isa.Image.t option }

val bind : ?image:Isa.Image.t -> kernel -> binding

type retry_policy =
  | No_retry
  | Retry_function of int
      (** Restart only the failed function, up to n attempts total
          (§3.1: possible when as-libos is unaffected and the
          intermediate data is intact — function heaps are recovered
          per heap unit). *)
  | Retry_workflow of int
      (** Restart the whole workflow in a fresh WFD, up to n attempts
          total (idempotent functions).  Covers terminal function
          failures {e and} undetected hangs ({!Function_hung}); the
          function-restart counter is carried across attempts, so
          [report.retries] counts every recovery action performed. *)

type backoff =
  | No_backoff
  | Exponential of { base : Sim.Units.time; factor : float; limit : Sim.Units.time }
      (** Attempt [k] (k >= 2) waits [min limit (base * factor^(k-2))]
          of virtual time before restarting. *)

val backoff_delay : backoff -> attempt:int -> Sim.Units.time
(** The wait charged before the given attempt number (zero for the
    first attempt) — exposed so tests can assert the exact schedule. *)

(** {1 Admission cache}

    Blacklist scanning is pure over image content, so a serving layer
    caches verdicts by content hash: a re-submitted image skips the
    per-KB scan and replays the recorded verdict at
    {!Cost.admission_cache_hit}. *)

type admission_cache

val admission_cache : unit -> admission_cache
val admission_hits : admission_cache -> int
(** Scans skipped thanks to a cached verdict. *)

val admission_scans : admission_cache -> int
(** Full scans performed (cache misses). *)

type config = {
  cores : int;  (** Host CPUs available to this WFD. *)
  features : Wfd.features;
  vfs : Fsim.Vfs.t option;  (** Pre-staged disk image (inputs). *)
  wasm_runtime : Wasm.Runtime.profile option;
      (** Runtime for C/Python functions; default Wasmtime. *)
  dispatch_latency : Sim.Units.time;  (** Orchestrator per-thread dispatch. *)
  retry : retry_policy;
  cpu_quota : float option;
      (** §9 resource allocation: cgroup CPU bandwidth per function
          thread (0 < q <= 1); [None] = unlimited. *)
  fault : Sim.Fault.t option;
      (** Deterministic fault plan armed across the WFD's substrate
          (disk, buffer heap, loader, network, function threads). *)
  timeout : Sim.Units.time option;
      (** Per-function virtual-time watchdog: an attempt running (or
          hanging) past this budget is killed and counts as a failed
          attempt under the retry policy. *)
  backoff : backoff;  (** Wait between retry attempts. *)
  admission : admission_cache option;
      (** Shared verdict cache; [None] scans every image every run. *)
  code_cache : Wasm.Compile_cache.t option;
      (** Shared content-hash compile cache for WASM modules loaded by
          function code ({!Asstd.load_wasm}).  Saves host-side
          recompiles only — virtual compile time is charged on every
          load, so results are bit-identical with or without it. *)
}

val default_config : config

type stage_report = {
  stage_index : int;
  instance_durations : Sim.Units.time list;
  stage_makespan : Sim.Units.time;
  fan_in_waits : Sim.Units.time list;
}

type report = {
  e2e : Sim.Units.time;  (** Trigger to workflow completion. *)
  cold_start : Sim.Units.time;
      (** Trigger to first user instruction (the Fig. 10 metric). *)
  admission : Sim.Units.time;
      (** Image scanning/rewriting time (off the critical path). *)
  stage_reports : stage_report list;
  phase_totals : (string * Sim.Units.time) list;
      (** Summed per-phase time across all function threads (Fig. 15). *)
  entry_misses : int;
  entry_hits : int;
  trampoline_crossings : int;
  peak_rss : int;
  stdout : string;
  loaded_modules : string list;
  retries : int;  (** Function or workflow restarts performed. *)
}

exception Admission_failed of string
(** An image contained non-rewritable blacklisted instructions. *)

exception Function_failed of { fn : string; attempts : int; error : exn }
(** A user function kept failing after the configured retries.  The
    failure never escapes the WFD: MPK fault isolation means other
    WFDs (and the visor itself) are unaffected. *)

exception Function_hung of { fn : string }
(** An injected hang wedged a function thread and no [config.timeout]
    watchdog was armed: the hang is undetectable at function
    granularity, so the attempt is abandoned.  [Retry_workflow]
    restarts the whole workflow in a fresh WFD; otherwise the exception
    escapes — configure a timeout for function-level recovery. *)

exception Timed_out of { fn : string; after : Sim.Units.time }
(** The [error] payload inside {!Function_failed} when an attempt was
    killed by the per-function watchdog timeout. *)

val run :
  ?config:config ->
  workflow:Workflow.t ->
  bindings:(string * binding) list ->
  unit ->
  report
(** Execute the workflow once in a fresh WFD.  The WFD is destroyed on
    every exit path, including failures.  Raises [Invalid_argument] if
    a node has no binding, {!Admission_failed} on a rejected image. *)

val run_many :
  ?config:config ->
  workflow:Workflow.t ->
  bindings:(string * binding) list ->
  repeat:int ->
  unit ->
  report array
(** Execute the workflow [repeat] times, spreading the runs over the
    host domain pool ({!Sim.Par.set_domains}).  Reports come back in
    submission order and every virtual-time output — reports, spans,
    trace, metrics, counters, fault accounting — is bit-identical
    whatever the domain count: admission runs in a sequential prologue
    (one verdict per repeat, reused by that repeat's retry attempts),
    WFD ids are reserved per submission index, fault plans are split
    per index ({!Sim.Fault.child}) and collector shards merge in
    submission order.  A config with a shared pre-staged disk
    ([config.vfs]) keeps all repeats on the submitting domain, since
    the image is host-mutable state.  Raises like {!run}; if several
    repeats fail, the lowest submission index's exception is the one
    re-raised. *)

val cold_start_only : ?config:config -> unit -> Sim.Units.time
(** The no-ops cold-start measurement: trigger to first user
    instruction of an empty function. *)

(** {1 Multi-tenant serving}

    Long-lived serving on top of the per-run orchestrator: endpoints
    register workflows once; requests then execute concurrently over a
    shared core pool in virtual time.  First request to an endpoint
    boots cold and seeds a warm {e template} WFD (entry table built,
    declared modules preloaded, WASM engine / CPython booted);
    subsequent requests CoW-clone the template — the Fig. 10 cold-boot
    path replaced by {!Cost.wfd_clone} + per-module attach + runtime
    resume.  Templates are LRU-evicted under a pool memory cap measured
    from proc-table RSS. *)

module Server : sig
  type request = { endpoint : string; arrival : Sim.Units.time }

  type response = {
    r_endpoint : string;
    r_arrival : Sim.Units.time;
    r_finish : Sim.Units.time;
    r_latency : Sim.Units.time;
    r_warm : bool;  (** Booted by cloning a pooled template. *)
    r_ok : bool;
    r_attempts : int;  (** Workflow-level attempts consumed. *)
    r_retries : int;  (** Function restarts across all attempts. *)
  }

  type serve_report = {
    responses : response list;  (** In completion order. *)
    completed : int;
    failed : int;
    duration : Sim.Units.time;  (** First arrival to last finish. *)
    throughput_rps : float;
    mean_latency : Sim.Units.time;
    p50_latency : Sim.Units.time;
    p99_latency : Sim.Units.time;
    max_inflight : int;  (** Peak concurrently-executing workflows. *)
    warm_starts : int;
    cold_starts : int;
    adm_hits : int;
    adm_scans : int;
    evictions : int;
    templates_live : int;
    machine_peak_rss : int;
  }

  (** The aggregate half of a {!serve_report}: everything except the
      materialised response list.  Returned by {!serve_fold}, whose
      whole point is never to hold the responses. *)
  type summary = {
    sm_completed : int;
    sm_failed : int;
    sm_duration : Sim.Units.time;
    sm_throughput_rps : float;
    sm_mean_latency : Sim.Units.time;
    sm_p50_latency : Sim.Units.time;
    sm_p99_latency : Sim.Units.time;
    sm_max_inflight : int;
    sm_warm_starts : int;
    sm_cold_starts : int;
    sm_adm_hits : int;
    sm_adm_scans : int;
    sm_evictions : int;
    sm_templates_live : int;
    sm_machine_peak_rss : int;
    sm_latency_sketched : bool;
        (** Latency percentiles above came from a t-digest (see
            [sketch_latency] on {!create}) rather than retained
            samples. *)
  }

  type t

  val create :
    ?config:config ->
    ?pool_mem_cap:int ->
    ?warm:bool ->
    ?sample_every:int ->
    ?sample_seed:int ->
    ?sketch_latency:bool ->
    ?recycle_cap:int ->
    unit ->
    t
  (** A server over [config.cores] shared cores.  [pool_mem_cap]
      (default 512 MiB) bounds the template pool's resident memory;
      [warm:false] disables the pool entirely (every request boots
      cold — the baseline the bench compares against).  The server
      uses [config.admission] when provided, else its own cache.

      [sample_every] (default 1) samples per-request observability:
      only every k-th request — by arrival index, starting at phase
      [sample_seed mod k] — carries spans and trace events, so a
      10^5-request run keeps O(n/k) observability state.  Metrics and
      counters stay exact for {e every} request.  [sample_every:1] is
      bit-identical to always-on.  Raises [Invalid_argument] when
      [sample_every < 1].

      [sketch_latency] (default false) replaces the serve loop's
      retained latency samples with a deterministic t-digest
      ({!Sim.Sketch.Tdigest}): report p50/p99 become sketch estimates
      and latency memory is O(1) in the request count — the setting for
      10^6-request and soak runs.  The default retains every latency
      and reports exact percentiles, byte-identical to earlier
      releases.

      [recycle_cap] (default 64) bounds the per-template pool of
      recycled WFD shells: a clean warm request's WFD is reset to the
      template image and reused by a later request ({!Wfd.recycle} /
      {!Wfd.acquire}) instead of being torn down and re-cloned.
      Recycling is host-only — every virtual observable is
      bit-identical to clone-then-destroy, at any domain count —
      [recycle_cap:0] disables it (the historical path).  Shells
      recirculate within a scheduling window (a trajectory's release
      feeds the next trajectory on any domain), so the pool's
      steady-state population is O(domains), far below the default
      cap; the cap only bounds transients.  Raises [Invalid_argument]
      when negative. *)

  val register :
    t ->
    endpoint:string ->
    workflow:Workflow.t ->
    bindings:(string * binding) list ->
    unit ->
    unit
  (** Raises [Invalid_argument] on a duplicate endpoint or a node
      without a binding. *)

  val endpoints : t -> string list
  (** Registered endpoints, sorted.  Memoized: the sorted list is
      rebuilt only after a {!register}, so per-snapshot polling in a
      soak loop is O(1). *)

  val enable_telemetry :
    t ->
    ?window:Sim.Units.time ->
    ?retention:int ->
    ?slos:Sim.Slo.spec list ->
    unit ->
    unit
  (** Opt into windowed telemetry (off by default, so the serving hot
      path pays nothing).  Serving then feeds a {!Sim.Timeseries}
      ([window] wide, default 1 virtual second, keeping [retention]
      windows) with request/error/warm/cold/recycle-release counters,
      a per-window inflight high-watermark, latency distributions, and
      per-endpoint labelled variants — and evaluates one
      {!Sim.Slo} monitor per spec in [slos].

      Every observation is recorded from the sequential merge loop on
      the merged virtual timeline, so timeseries exports, SLO alert
      instants and burn rates are byte-identical across host domain
      counts.  The recycle-release series counts shells {e offered}
      back to the pool (a plan-deterministic event); whether an offer
      stays pooled depends on host push order and is deliberately not
      a telemetry signal. *)

  val telemetry : t -> Sim.Timeseries.t option
  (** The live timeseries once {!enable_telemetry} was called. *)

  val slo_monitors : t -> Sim.Slo.t list
  (** Monitors in [slos] order; live during a serve, final after. *)

  val slo_alerts : t -> Sim.Slo.alert list
  (** All monitors' pages and clears on one timeline, ordered by
      instant (ties by SLO name). *)

  val prewarm : t -> endpoint:string -> Sim.Units.time option
  (** Build (or touch) the endpoint's template off the request path.
      Returns the template build time, or [None] if the pool is
      disabled or the template exceeds the whole memory cap.  Raises
      [Not_found] for an unknown endpoint. *)

  val serve : t -> request list -> serve_report
  (** Run an open-loop trace to completion: arrivals fire at their
      timestamps regardless of completions, stages of distinct in-flight
      workflows interleave over the shared cores via the event queue.
      Requests are served in arrival order (the list is stably sorted
      by arrival first).  A request for an unregistered endpoint raises
      [Not_found]; an image rejected at admission fails that request
      (not the server).  Workflow-level retry ([Retry_workflow])
      re-boots failed requests in fresh WFDs up to the attempt
      budget. *)

  val serve_stream :
    t -> ?window:int -> (unit -> request option) -> serve_report
  (** Streaming variant of {!serve}: requests are pulled lazily from
      the generator ([None] ends the run) and pipelined through
      planning, parallel trajectory execution and the merge loop in
      windows of [window] requests (default 2048), so live host memory
      is O(window + in-flight) — constant in the total request count
      {e except} for the materialised response list it returns.
      Virtual output is bit-identical to {!serve} on the materialised
      list, for every window size and domain count.  Arrivals must be
      nondecreasing; otherwise raises [Invalid_argument]. *)

  val serve_fold :
    t ->
    ?window:int ->
    (unit -> request option) ->
    init:'a ->
    f:('a -> response -> 'a) ->
    'a * summary
  (** The streaming primitive under {!serve} and {!serve_stream}: each
      response is handed to [f] at its completion instant (completion
      order on the merged virtual timeline) and never stored, so live
      host memory is O(window + in-flight) with {e no} term linear in
      the request count — combined with [sketch_latency] on {!create},
      a 10^6-request run is constant-memory.  [f] runs on the merge
      (main) domain, interleaved with event processing; it must not
      call back into the server.  The virtual timeline, and hence the
      response sequence, is bit-identical to {!serve}/{!serve_stream}
      at every window size and domain count. *)

  val pool_size : t -> int
  val pool_rss : t -> int
  val evictions : t -> int
  val warm_hits : t -> int
  val cold_boots : t -> int
  val admission : t -> admission_cache

  val code_cache : t -> Wasm.Compile_cache.t
  (** The server's shared compile cache (the one injected into every
      request's config): warm clones of a template recompile nothing —
      its miss count stays at the number of distinct modules. *)

  val shutdown : t -> unit
  (** Destroy all pooled templates (drops their WFDs from the live
      count). *)
end
