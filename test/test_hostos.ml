(* Tests for the host-kernel model: syscall costs, pipes, processes,
   the stage scheduler, TAP devices. *)

open Sim
open Hostos

let check_time = Alcotest.testable Units.pp Units.equal

let test_syscall_costs_ordered () =
  let direct = Syscall.cost Syscall.Read in
  let ptrace = Syscall.cost ~via:Syscall.Ptrace Syscall.Read in
  let vmexit = Syscall.cost ~via:Syscall.Vmexit Syscall.Read in
  Alcotest.(check bool) "ptrace slowest" true (Units.( > ) ptrace vmexit);
  Alcotest.(check bool) "vmexit slower than direct" true (Units.( > ) vmexit direct);
  (* gettimeofday is vDSO, cheapest of all. *)
  Alcotest.(check bool) "gtod cheapest" true
    (Units.( < ) (Syscall.cost Syscall.Gettimeofday) direct);
  (* dlmopen dominates every plain syscall. *)
  Alcotest.(check bool) "dlmopen heavy" true
    (Units.( > ) (Syscall.cost Syscall.Dlmopen) (Syscall.cost Syscall.Clone))

let test_pipe_roundtrip () =
  let p = Pipe.create () in
  let data = Bytes.of_string "through the pipe" in
  let n = Pipe.write p data in
  Alcotest.(check int) "all accepted" (Bytes.length data) n;
  Alcotest.(check bytes) "read back" data (Pipe.read p 100);
  Alcotest.(check bool) "drained" true (Pipe.is_empty p)

let test_pipe_capacity () =
  let p = Pipe.create () in
  let big = Bytes.make (Pipe.capacity + 100) 'x' in
  let n = Pipe.write p big in
  Alcotest.(check int) "bounded by capacity" Pipe.capacity n;
  Alcotest.(check int) "full rejects" 0 (Pipe.write p (Bytes.of_string "y"));
  let part = Pipe.read p 1000 in
  Alcotest.(check int) "partial read" 1000 (Bytes.length part);
  Alcotest.(check int) "space reopens" 100 (Pipe.write p (Bytes.make 100 'z'))

let test_pipe_chunks () =
  Alcotest.(check int) "zero" 0 (Pipe.transfer_chunks 0);
  Alcotest.(check int) "one" 1 (Pipe.transfer_chunks 1);
  Alcotest.(check int) "exact" 1 (Pipe.transfer_chunks Pipe.capacity);
  Alcotest.(check int) "two" 2 (Pipe.transfer_chunks (Pipe.capacity + 1))

let test_process_threads () =
  let table = Process.create_table () in
  let pid = Process.spawn_process table ~name:"wfd" () in
  Alcotest.(check int) "one thread" 1 (Process.thread_count table pid);
  let th = Process.clone_thread table pid in
  Alcotest.(check int) "two threads" 2 (Process.thread_count table pid);
  (* The clone charged the main thread's clock. *)
  let main = Process.main_thread table pid in
  Alcotest.check check_time "clone cost" (Syscall.cost Syscall.Clone)
    (Clock.now main.Process.clock);
  Alcotest.check check_time "child starts when clone returns"
    (Clock.now main.Process.clock) (Clock.now th.Process.clock)

let test_process_rss () =
  let table = Process.create_table () in
  let a = Process.spawn_process table ~name:"a" () in
  let b = Process.spawn_process table ~name:"b" () in
  Process.charge_rss table a 1000;
  Process.charge_rss table b 500;
  Alcotest.(check int) "per-process" 1000 (Process.rss table a);
  Alcotest.(check int) "total" 1500 (Process.total_rss table);
  Process.release_rss table a 2000;
  Alcotest.(check int) "release saturates" 0 (Process.rss table a);
  Process.exit_process table a;
  Alcotest.(check int) "exit removes" 1 (Process.live_processes table)

let test_sched_single_core_serialises () =
  let d = Units.ms 10 in
  let placements = Sched.schedule ~cores:1 [ d; d; d ] in
  Alcotest.check check_time "makespan = 3x" (Units.ms 30) (Sched.makespan placements);
  List.iteri
    (fun i p ->
      Alcotest.check check_time
        (Printf.sprintf "task %d start" i)
        (Units.ms (10 * i)) p.Sched.start)
    placements

let test_sched_parallel () =
  let d = Units.ms 10 in
  let placements = Sched.schedule ~cores:4 [ d; d; d ] in
  Alcotest.check check_time "fully parallel" (Units.ms 10) (Sched.makespan placements);
  let cores = List.map (fun p -> p.Sched.core) placements in
  Alcotest.(check int) "distinct cores" 3 (List.length (List.sort_uniq compare cores))

let test_sched_lpt_queueing () =
  (* 2 cores, tasks 10,10,5: third task starts when a core frees. *)
  let placements =
    Sched.schedule ~cores:2 [ Units.ms 10; Units.ms 10; Units.ms 5 ]
  in
  Alcotest.check check_time "queued start" (Units.ms 10)
    (List.nth placements 2).Sched.start;
  Alcotest.check check_time "makespan" (Units.ms 15) (Sched.makespan placements)

let test_sched_ready_and_dispatch () =
  let placements =
    Sched.schedule ~cores:8 ~ready:(Units.ms 5) ~dispatch_latency:(Units.ms 1)
      [ Units.ms 2; Units.ms 2 ]
  in
  Alcotest.check check_time "first starts after ready+1 dispatch" (Units.ms 6)
    (List.nth placements 0).Sched.start;
  Alcotest.check check_time "second waits for its dispatch" (Units.ms 7)
    (List.nth placements 1).Sched.start

let test_sched_fan_in_wait () =
  let placements = Sched.schedule ~cores:4 [ Units.ms 10; Units.ms 4 ] in
  match Sched.fan_in_wait placements with
  | [ w0; w1 ] ->
      Alcotest.check check_time "slowest waits zero" Units.zero w0;
      Alcotest.check check_time "fast one waits" (Units.ms 6) w1
  | _ -> Alcotest.fail "expected two waits"

let test_sched_same_core_pairs_divergence () =
  (* Two long tasks then two short ones on 2 cores: cores alternate
     0,1,0,1, so the tasks that actually run back to back on a core are
     (0,2) and (1,3) — NOT consecutive list entries. *)
  let placements =
    Sched.schedule ~cores:2 [ Units.ms 10; Units.ms 10; Units.ms 1; Units.ms 1 ]
  in
  Alcotest.(check (list int)) "cores alternate" [ 0; 1; 0; 1 ]
    (List.map (fun p -> p.Sched.core) placements);
  Alcotest.(check (list (pair int int))) "pairs follow core order"
    [ (0, 2); (1, 3) ]
    (Sched.same_core_pairs placements)

let test_sched_pool_shared_across_calls () =
  (* A persistent pool carries busy cores between schedule_on calls:
     the second batch queues behind the first. *)
  let pool = Sched.pool ~cores:2 in
  let first = Sched.schedule_on pool [ Units.ms 10; Units.ms 10 ] in
  Alcotest.check check_time "first batch" (Units.ms 10) (Sched.makespan first);
  let second = Sched.schedule_on pool [ Units.ms 5 ] in
  Alcotest.check check_time "second batch queues" (Units.ms 15) (Sched.makespan second);
  Alcotest.check check_time "pool busy horizon" (Units.ms 15) (Sched.busy_until pool);
  Alcotest.(check int) "core count" 2 (Sched.pool_cores pool)

let sched_bounds_property =
  QCheck.Test.make ~name:"sched: max <= makespan <= sum (+dispatch)" ~count:200
    QCheck.(pair (int_range 1 8) (list_of_size (Gen.int_range 1 12) (int_range 0 10_000)))
    (fun (cores, durations_us) ->
      let durations = List.map Units.us durations_us in
      let placements = Sched.schedule ~cores durations in
      let makespan = Sched.makespan placements in
      let longest = List.fold_left Units.max Units.zero durations in
      let total = List.fold_left Units.add Units.zero durations in
      Units.( >= ) makespan longest && Units.( <= ) makespan total
      && List.length placements = List.length durations
      && List.for_all (fun p -> p.Sched.core >= 0 && p.Sched.core < cores) placements)

let sched_no_core_overlap_property =
  QCheck.Test.make ~name:"sched: tasks on one core never overlap" ~count:200
    QCheck.(pair (int_range 1 4) (list_of_size (Gen.int_range 1 10) (int_range 1 5_000)))
    (fun (cores, durations_us) ->
      let placements = Sched.schedule ~cores (List.map Units.us durations_us) in
      let by_core = Hashtbl.create 4 in
      List.iter
        (fun p ->
          let prev = try Hashtbl.find by_core p.Sched.core with Not_found -> [] in
          Hashtbl.replace by_core p.Sched.core (p :: prev))
        placements;
      Hashtbl.fold
        (fun _ ps acc ->
          let sorted = List.sort (fun a b -> Units.compare a.Sched.start b.Sched.start) ps in
          let rec ok = function
            | a :: (b :: _ as rest) -> Units.( <= ) a.Sched.finish b.Sched.start && ok rest
            | [ _ ] | [] -> true
          in
          acc && ok sorted)
        by_core true)

let test_shm_roundtrip () =
  let clock = Clock.create () in
  let shm = Shm.create ~size:65536 ~clock in
  Alcotest.(check int) "size" 65536 (Shm.size shm);
  let after_setup = Clock.now clock in
  Alcotest.(check bool) "setup charged" true (Units.( > ) after_setup Units.zero);
  (* Reading before any write fails (no doorbell). *)
  (match Shm.read shm ~clock with
  | _ -> Alcotest.fail "read before write must fail"
  | exception Failure _ -> ());
  let payload = Bytes.init 10_000 (fun i -> Char.chr (i mod 256)) in
  Shm.write shm ~clock payload;
  let got = Shm.read shm ~clock in
  Alcotest.(check bytes) "roundtrip" payload got;
  Alcotest.(check bool) "transfer charged" true
    (Units.( > ) (Clock.now clock) after_setup)

let test_shm_second_read_no_faults () =
  let clock = Clock.create () in
  let shm = Shm.create ~size:(1024 * 1024) ~clock in
  let payload = Bytes.make (1024 * 1024) 'x' in
  Shm.write shm ~clock payload;
  ignore (Shm.read shm ~clock);
  let t1 = Clock.now clock in
  Shm.write shm ~clock payload;
  ignore (Shm.read shm ~clock);
  let second = Units.sub (Clock.now clock) t1 in
  Shm.write shm ~clock payload;
  let t2 = Clock.now clock in
  ignore (Shm.read shm ~clock);
  ignore t2;
  (* Warm mapping: the second full exchange is cheaper than the first
     (no page faults). *)
  let clock2 = Clock.create () in
  let shm2 = Shm.create ~size:(1024 * 1024) ~clock:clock2 in
  let s0 = Clock.now clock2 in
  Shm.write shm2 ~clock:clock2 payload;
  ignore (Shm.read shm2 ~clock:clock2);
  let first = Units.sub (Clock.now clock2) s0 in
  Alcotest.(check bool) "warm exchange cheaper" true (Units.( < ) second first)

let test_cgroup_quota () =
  let half = Cgroup.create ~quota:0.5 in
  Alcotest.check check_time "half quota doubles wall time" (Units.ms 20)
    (Cgroup.stretch half (Units.ms 10));
  Alcotest.check check_time "unlimited is identity" (Units.ms 10)
    (Cgroup.stretch Cgroup.unlimited (Units.ms 10));
  Alcotest.(check (float 1e-9)) "throttled share" 0.75
    (Cgroup.throttled_share (Cgroup.create ~quota:0.25));
  (match Cgroup.create ~quota:0.0 with
  | _ -> Alcotest.fail "quota 0 invalid"
  | exception Invalid_argument _ -> ());
  match Cgroup.create ~quota:1.5 with
  | _ -> Alcotest.fail "quota > 1 invalid"
  | exception Invalid_argument _ -> ()

let test_tap_allocation () =
  let reg = Tap.create () in
  let d1 = Tap.allocate reg in
  let d2 = Tap.allocate reg in
  Alcotest.(check bool) "unique names" true (d1.Tap.name <> d2.Tap.name);
  Alcotest.(check bool) "unique ips" true (d1.Tap.ip <> d2.Tap.ip);
  Alcotest.(check int) "active" 2 (Tap.active reg);
  Tap.release reg d1;
  Alcotest.(check int) "released" 1 (Tap.active reg);
  Alcotest.(check int) "total ever" 2 (Tap.allocated_total reg)

let suite =
  [
    Alcotest.test_case "syscall cost ordering" `Quick test_syscall_costs_ordered;
    Alcotest.test_case "pipe roundtrip" `Quick test_pipe_roundtrip;
    Alcotest.test_case "pipe capacity" `Quick test_pipe_capacity;
    Alcotest.test_case "pipe chunk accounting" `Quick test_pipe_chunks;
    Alcotest.test_case "process threads" `Quick test_process_threads;
    Alcotest.test_case "process rss" `Quick test_process_rss;
    Alcotest.test_case "sched single core" `Quick test_sched_single_core_serialises;
    Alcotest.test_case "sched parallel" `Quick test_sched_parallel;
    Alcotest.test_case "sched queueing" `Quick test_sched_lpt_queueing;
    Alcotest.test_case "sched ready/dispatch" `Quick test_sched_ready_and_dispatch;
    Alcotest.test_case "sched fan-in wait" `Quick test_sched_fan_in_wait;
    Alcotest.test_case "sched same-core pairs divergence" `Quick
      test_sched_same_core_pairs_divergence;
    Alcotest.test_case "sched shared pool" `Quick test_sched_pool_shared_across_calls;
    QCheck_alcotest.to_alcotest sched_bounds_property;
    QCheck_alcotest.to_alcotest sched_no_core_overlap_property;
    Alcotest.test_case "shm roundtrip" `Quick test_shm_roundtrip;
    Alcotest.test_case "shm warm mapping cheaper" `Quick test_shm_second_read_no_faults;
    Alcotest.test_case "cgroup quota" `Quick test_cgroup_quota;
    Alcotest.test_case "tap allocation" `Quick test_tap_allocation;
  ]
