(** Unikraft unikernel deployed inside Firecracker.

    A specialised LibOS image (e.g. 1.6 MB for Nginx) boots in ~137 ms
    when launched through a VMM (Fig. 2): most of the time is VMM spawn
    and image load, not the unikernel itself. *)

val profile : Sandbox.profile

val bare_boot : Sim.Units.time
(** Just the unikernel's own initialisation, excluding the VMM. *)
