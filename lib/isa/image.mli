(** A simulated function binary image: named instruction stream plus
    metadata about which language/toolchain produced it. *)

type toolchain = Rust_as_std | Rust_plain_std | Wasm_aot | Native_c

type t = {
  name : string;
  toolchain : toolchain;
  insts : Inst.t list;
  mutable hash : string option;
      (** Memoized {!content_hash}; [insts] never changes after
          {!create}, so the digest is computed at most once per image.
          Use {!content_hash}, never this field. *)
}

val create : name:string -> toolchain:toolchain -> Inst.t list -> t

val code : t -> string
(** Concatenated byte encoding of the instruction stream. *)

val code_size : t -> int
val inst_count : t -> int

val boundaries : t -> int list
(** Byte offsets at which each instruction starts (ascending, starting
    with 0). *)

val content_hash : t -> string
(** Digest of the encoded instruction stream plus toolchain tag — the
    admission-cache key.  Two images with identical code and toolchain
    hash identically regardless of their names.  Memoized: repeated
    calls on the same image are O(1) after the first. *)

val pp_toolchain : Format.formatter -> toolchain -> unit
