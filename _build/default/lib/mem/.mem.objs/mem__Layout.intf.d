lib/mem/layout.mli: Format
