lib/core/libos_fdtab.ml: Bytes Clock Errno Ext Hashtbl Hostos Libos_fatfs Libos_stdio Netsim Sim Stdlib String Wfd
