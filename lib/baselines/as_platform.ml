open Workloads
open Sim
open Alloystack_core

type fs_backend = Fat_image | Ram_fs

type options = {
  language : Workflow.language;
  features : Wfd.features;
  fs : fs_backend;
  wasm_runtime : Wasm.Runtime.profile option;
}

let default_options =
  {
    language = Workflow.Rust;
    features = Wfd.default_features;
    fs = Fat_image;
    wasm_runtime = None;
  }

let to_workflow ~language ~modules stages =
  let nodes =
    List.map
      (fun (name, instances, _) ->
        { Workflow.node_id = name; language; instances; required_modules = modules })
      stages
  in
  let rec edges = function
    | (a, _, _) :: ((b, _, _) :: _ as rest) -> (a, b) :: edges rest
    | [ _ ] | [] -> []
  in
  Workflow.create_exn ~name:"app" ~nodes ~edges:(edges stages)

let stage_inputs vfs inputs =
  List.iter (fun (path, data) -> vfs.Fsim.Vfs.write_file path data) inputs

let make ?(options = default_options) () =
  let name =
    let base =
      match options.language with
      | Workflow.Rust -> "AlloyStack"
      | Workflow.C -> "AlloyStack-C"
      | Workflow.Python -> "AlloyStack-Py"
    in
    let base = if options.features.Wfd.ifi then base ^ "-IFI" else base in
    match (options.features.Wfd.on_demand, options.features.Wfd.ref_passing) with
    | true, true -> if options.fs = Ram_fs then base ^ "-ramfs" else base
    | false, false -> base ^ "-base"
    | true, false -> base ^ "+ondemand"
    | false, true -> base ^ "+refpass"
  in
  let run ?(cores = 64) (app : Fctx.app) =
    let vfs =
      match options.fs with
      | Fat_image -> Fsim.Vfs.fresh_fat ()
      | Ram_fs -> Fsim.Vfs.fresh_ramfs ()
    in
    stage_inputs vfs app.Fctx.inputs;
    let workflow = to_workflow ~language:options.language ~modules:app.Fctx.modules app.Fctx.stages in
    let make_binding (_, _, kernel) =
      Visor.bind (fun (actx : Asstd.ctx) ~instance ~total ->
          let fctx =
            {
              Fctx.instance;
              total;
              read_input = (fun path -> Asstd.read_whole_file actx path);
              write_output = (fun path data -> Asstd.write_whole_file actx path data);
              send = (fun ~slot data -> ignore (Asbuffer.with_slot_raw actx ~slot data));
              recv =
                (fun ~slot ->
                  match Asbuffer.from_slot_raw actx ~slot with
                  | data -> data
                  | exception Errno.Error (Errno.Enoent, _) -> raise Not_found);
              println = (fun line -> Asstd.println actx line);
              compute = (fun t -> Asstd.compute actx t);
              phase = (fun name f -> Asstd.in_phase actx name f);
            }
          in
          kernel fctx)
    in
    let bindings =
      List.map (fun ((n, _, _) as stage) -> (n, make_binding stage)) app.Fctx.stages
    in
    let config =
      {
        Visor.default_config with
        Visor.cores;
        features = options.features;
        vfs = Some vfs;
        wasm_runtime = options.wasm_runtime;
      }
    in
    let report = Visor.run ~config ~workflow ~bindings () in
    let read_output path =
      match vfs.Fsim.Vfs.read_file path with
      | data -> Some data
      | exception Not_found -> None
    in
    let cpu_time =
      List.fold_left
        (fun acc (s : Visor.stage_report) ->
          List.fold_left Units.add acc s.Visor.instance_durations)
        Units.zero report.Visor.stage_reports
    in
    {
      Platform.platform = name;
      e2e = report.Visor.e2e;
      cold_start = report.Visor.cold_start;
      phase_totals = report.Visor.phase_totals;
      cpu_time;
      peak_rss = report.Visor.peak_rss;
      validated = app.Fctx.validate ~read_output;
    }
  in
  { Platform.name; run }

let alloystack = make ()

let alloystack_ifi =
  make
    ~options:
      { default_options with features = { Wfd.default_features with Wfd.ifi = true } }
    ()

let alloystack_c = make ~options:{ default_options with language = Workflow.C } ()

let alloystack_py = make ~options:{ default_options with language = Workflow.Python } ()

let alloystack_ramfs = make ~options:{ default_options with fs = Ram_fs } ()

let ablation ~on_demand ~ref_passing =
  make
    ~options:
      {
        default_options with
        features = { Wfd.on_demand; ref_passing; ifi = false };
      }
    ()
