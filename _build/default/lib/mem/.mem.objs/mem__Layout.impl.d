lib/mem/layout.ml: Format
