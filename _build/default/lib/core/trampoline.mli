(** The as-std trampoline: PKRU switching between user and system
    contexts (Fig. 9 of the paper).

    Entering as-libos from user code saves the context, switches to the
    system stack, raises PKRU to the system rights word and jumps;
    returning performs the reverse.  The switch is modelled faithfully:
    the thread's PKRU field really changes, so any simulated memory
    access in the wrong context raises a protection fault — and the
    trampoline pages themselves must be executable under the user
    rights, which {!enter_system} checks by fetching from them. *)

exception Not_in_user_context
(** Raised when entering the system while already in system context —
    trampolines are not reentrant. *)

val enter_system : Wfd.t -> Wfd.thread -> (unit -> 'a) -> 'a
(** [enter_system wfd thread f] raises rights, runs [f] (as-libos
    work), restores user rights, and charges two trampoline switches
    to the thread's clock.  Exceptions from [f] still restore user
    rights. *)

val in_system : Wfd.thread -> bool

val user_access_check : Wfd.t -> Wfd.thread -> int -> unit
(** Probe helper for tests: perform a 1-byte read at an address with
    the thread's *current* rights. *)
