lib/core/gateway.ml: Array Cost Hashtbl Jsonlite List Netsim Printf Sim Stdlib String Units Visor Workflow
