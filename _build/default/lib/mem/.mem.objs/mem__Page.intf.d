lib/mem/page.mli: Bytes Format Prot
