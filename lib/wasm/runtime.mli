(** WASM runtime profiles and virtual-time charging.

    Wasmtime (Cranelift) and WAVM (LLVM) differ mainly in code quality
    and compile cost: the paper measures Wasmtime ~30% slower at
    execution (§8.5).  A runtime profile fixes the startup cost, AOT
    compile rate and per-instruction execution cost; {!run} executes a
    compiled module for real and charges virtual time from the retired
    instruction count. *)

type profile = {
  name : string;
  startup : Sim.Units.time;  (** Runtime init (engine, linker). *)
  compile_per_instr : Sim.Units.time;  (** AOT compile time per static instr. *)
  exec_per_kinstr : Sim.Units.time;
      (** Charged per 1000 retired instructions (sub-ns per-instr costs
          are not representable in integer nanoseconds). *)
  interp_per_instr : Sim.Units.time;  (** When no AOT (fallback). *)
}

val wasmtime : profile
(** Cranelift codegen, [no_std] configuration (as AlloyStack embeds it). *)

val wavm : profile
(** LLVM codegen (as Faasm embeds it); ~30% faster execution, slower
    compilation. *)

val cpython_init : Sim.Units.time
(** Cost of booting the CPython-on-WASM runtime before the first line
    of user Python executes — the dominant term in AS-Py / Faasm-Py
    cold starts (Fig. 10). *)

type loaded

val load :
  ?cache:Compile_cache.t ->
  ?fault:Sim.Fault.t ->
  profile ->
  clock:Sim.Clock.t ->
  Wmodule.t ->
  loaded
(** AOT-compile under the profile, charging startup + compile time.

    [cache] memoizes the host-side compilation by module content hash;
    virtual startup and compile costs are charged identically on hit
    and miss, so the cache changes host time only.  [fault] is checked
    at {!Sim.Fault.site_loader_load}: a fired fault charges one extra
    engine restart and records a recovery, and — because the check runs
    inside the cache-fill path — never commits a half-built cache
    entry. *)

val instantiate :
  loaded -> clock:Sim.Clock.t -> system:Wasi.system -> Aot.instance
(** Instance creation (memory + linker binding), charged. *)

val run :
  loaded ->
  clock:Sim.Clock.t ->
  instance:Aot.instance ->
  string ->
  int64 array ->
  int64
(** Call an export; afterwards the clock advances by
    [retired_instructions * exec_per_instr]. *)

val image_of : loaded -> Isa.Image.t
(** For blacklist scanning before admission. *)

val charge_synthetic :
  profile -> clock:Sim.Clock.t -> native_work:Sim.Units.time -> unit
(** Charge the cost of computation measured in *native* time when run
    under this runtime (scales by exec_per_instr relative to native).
    Used for the large benchmark workloads whose kernels are modelled
    rather than executed instruction-by-instruction — see DESIGN.md. *)

val slowdown_vs_native : profile -> float
