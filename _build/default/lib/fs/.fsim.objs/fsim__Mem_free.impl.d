lib/fs/mem_free.ml: List Stdlib
