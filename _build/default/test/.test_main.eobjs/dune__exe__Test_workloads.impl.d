test/test_workloads.ml: Alcotest Baselines Bytes Compile_app Datagen Fctx Function_chain Gen Hashtbl Image_meta Int32 List Parallel_sorting Pipe_app QCheck QCheck_alcotest String Wordcount Workloads
