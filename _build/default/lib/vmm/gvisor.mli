(** gVisor (runsc, ptrace platform) boot profile.

    The paper (§8.2) attributes gVisor's slow start to (1) ptrace
    interception during initialisation (~50% of runtime-process CPU in
    kernel mode) and (2) Go runtime + OCI machinery (>20% of total).
    Workload syscalls are intercepted via ptrace at runtime too. *)

val profile : Sandbox.profile
