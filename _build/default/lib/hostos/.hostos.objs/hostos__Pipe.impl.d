lib/hostos/pipe.ml: Buffer Bytes Stdlib
