(* Classic universal-type extension map: each key owns an injection /
   projection pair over an extensible variant. *)

type binding = ..

type 'a key = {
  uid : int;
  name : string;
  inject : 'a -> binding;
  project : binding -> 'a option;
}

type t = (int, binding) Hashtbl.t

let next_uid = ref 0

let create () = Hashtbl.create 8

let new_key (type a) name : a key =
  let module M = struct
    type binding += B of a
  end in
  incr next_uid;
  {
    uid = !next_uid;
    name;
    inject = (fun v -> M.B v);
    project = (function M.B v -> Some v | _ -> None);
  }

let set t key v = Hashtbl.replace t key.uid (key.inject v)

let get t key =
  match Hashtbl.find_opt t key.uid with
  | None -> None
  | Some b -> key.project b

let get_exn t key =
  match get t key with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Ext.get_exn: no binding for %s" key.name)

let mem t key = Hashtbl.mem t key.uid

let remove t key = Hashtbl.remove t key.uid

let clear t = Hashtbl.reset t
