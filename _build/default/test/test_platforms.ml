(* Integration tests across platforms: every comparison system runs the
   shared workloads correctly, and the paper's qualitative orderings
   hold. *)

open Sim
open Baselines
open Workloads

let small_pipe = Pipe_app.app ~seed:41 ~size:(256 * 1024)
let small_wc () = Wordcount.app ~seed:42 ~size:(256 * 1024) ~instances:2
let small_ps () = Parallel_sorting.app ~seed:43 ~size:(256 * 1024) ~instances:2
let small_chain () = Function_chain.app ~seed:44 ~payload:(64 * 1024) ~length:4

let all_rust_platforms =
  [
    As_platform.alloystack;
    As_platform.alloystack_ifi;
    As_platform.alloystack_ramfs;
    Faastlane.default_;
    Faastlane.refer;
    Faastlane.refer_kata;
    Openfaas.openfaas;
    Openfaas.openfaas_gvisor;
  ]

let wasm_platforms = [ As_platform.alloystack_c; As_platform.alloystack_py; Faasm.c; Faasm.python ]

let run (p : Platform.t) app = p.Platform.run app

let check_ok label (m : Platform.metrics) =
  match m.Platform.validated with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Printf.sprintf "%s on %s: %s" label m.Platform.platform e)

let test_all_platforms_validate_pipe () =
  List.iter
    (fun p -> check_ok "pipe" (run p small_pipe))
    (all_rust_platforms @ wasm_platforms)

let test_all_platforms_validate_wordcount () =
  List.iter (fun p -> check_ok "wordcount" (run p (small_wc ()))) all_rust_platforms

let test_wasm_platforms_validate_wordcount () =
  List.iter (fun p -> check_ok "wordcount" (run p (small_wc ()))) wasm_platforms

let test_all_platforms_validate_sorting () =
  List.iter (fun p -> check_ok "sorting" (run p (small_ps ()))) all_rust_platforms

let test_all_platforms_validate_chain () =
  List.iter (fun p -> check_ok "chain" (run p (small_chain ()))) all_rust_platforms

let test_image_pipeline_on_alloystack () =
  check_ok "image" (run As_platform.alloystack (Image_meta.image_pipeline ~seed:9))

(* --- qualitative orderings from the paper --- *)

let e2e p app = (run p app).Platform.e2e

let test_kata_cold_start_dominates () =
  (* Faastlane-refer-kata pays the MicroVM boot: much slower than plain
     Faastlane on a small workload (the 38.7x effect). *)
  let kata = e2e Faastlane.refer_kata (small_ps ()) in
  let plain = e2e Faastlane.refer (small_ps ()) in
  Alcotest.(check bool) "kata >> plain" true (Units.( > ) kata (Units.scale plain 10.0))

let test_alloystack_beats_openfaas () =
  (* Per-function container boots + Redis forwarding: OpenFaaS is far
     slower than AlloyStack on every workflow (6.5-29.3x in Fig. 12). *)
  List.iter
    (fun app ->
      let asx = e2e As_platform.alloystack app in
      let ofs = e2e Openfaas.openfaas app in
      Alcotest.(check bool) "AS much faster" true (Units.( > ) ofs (Units.scale asx 4.0)))
    [ small_wc (); small_ps (); small_chain () ]

let test_alloystack_beats_faasm_on_chain () =
  (* FunctionChain stresses the data plane: AS-C wins 3-12.4x. *)
  let app = Function_chain.app ~seed:45 ~payload:(1024 * 1024) ~length:6 in
  let asc = e2e As_platform.alloystack_c app in
  let faasm = e2e Faasm.c app in
  Alcotest.(check bool) "AS-C faster on chain" true
    (Units.( > ) faasm (Units.scale asc 1.5))

let test_ifi_costs_a_little () =
  let app = small_pipe in
  let base = e2e As_platform.alloystack app in
  let ifi = e2e As_platform.alloystack_ifi app in
  Alcotest.(check bool) "IFI slower" true (Units.( >= ) ifi base);
  Alcotest.(check bool) "but within 35%" true
    (Units.( <= ) ifi (Units.scale base 1.35))

let test_ablation_ordering () =
  (* Fig. 14: base >= +on-demand, base >= +ref-passing, both <= each. *)
  let app = Function_chain.app ~seed:46 ~payload:(512 * 1024) ~length:5 in
  let t_base = e2e (As_platform.ablation ~on_demand:false ~ref_passing:false) app in
  let t_od = e2e (As_platform.ablation ~on_demand:true ~ref_passing:false) app in
  let t_rp = e2e (As_platform.ablation ~on_demand:false ~ref_passing:true) app in
  let t_both = e2e (As_platform.ablation ~on_demand:true ~ref_passing:true) app in
  Alcotest.(check bool) "on-demand helps" true (Units.( < ) t_od t_base);
  Alcotest.(check bool) "ref-passing helps" true (Units.( < ) t_rp t_base);
  Alcotest.(check bool) "both best" true
    (Units.( <= ) t_both (Units.min t_od t_rp))

let test_python_dominated_by_runtime_init () =
  let m = run As_platform.alloystack_py small_pipe in
  check_ok "pipe-py" m;
  Alcotest.(check bool) "AS-Py cold start > 1.5s" true
    (Units.( > ) m.Platform.cold_start (Units.ms 1500))

let test_cpu_memory_reduction_fig17b () =
  (* AlloyStack uses substantially less CPU and memory than
     Faastlane-refer-kata (2.4x / 3.2x in the appendix). *)
  let app = small_ps () in
  let as_m = run As_platform.alloystack app in
  let kata_m = run Faastlane.refer_kata app in
  Alcotest.(check bool) "cpu reduced" true
    (Units.( > ) kata_m.Platform.cpu_time as_m.Platform.cpu_time);
  Alcotest.(check bool) "memory reduced" true
    (kata_m.Platform.peak_rss > as_m.Platform.peak_rss)

let test_phase_totals_populated () =
  let m = run As_platform.alloystack (small_wc ()) in
  Alcotest.(check bool) "read phase present" true
    (Units.( > ) (Platform.phase_total m Fctx.phase_read) Units.zero);
  Alcotest.(check bool) "transfer phase present" true
    (Units.( > ) (Platform.phase_total m Fctx.phase_transfer) Units.zero)

let test_speedup_helper () =
  let a = run As_platform.alloystack small_pipe in
  let b = run Openfaas.openfaas small_pipe in
  Alcotest.(check bool) "speedup > 1" true (Platform.speedup a ~over:b > 1.0);
  Alcotest.(check bool) "inverse < 1" true (Platform.speedup b ~over:a < 1.0)

(* --- load generator (Fig. 17a machinery) --- *)

let test_loadgen_light_load_no_queueing () =
  let spec =
    { Loadgen.cores = 16; width = 2; service = Units.ms 10; contention = 0.0 }
  in
  let r = Loadgen.run spec ~qps:10.0 ~requests:300 in
  (* Far below saturation: sojourn ~ service. *)
  Alcotest.(check bool) "p50 ~ service" true
    (Units.( < ) r.Loadgen.p50 (Units.ms 12));
  Alcotest.(check bool) "p99 bounded" true (Units.( < ) r.Loadgen.p99 (Units.ms 30))

let test_loadgen_saturation_queues () =
  let spec =
    { Loadgen.cores = 4; width = 2; service = Units.ms 10; contention = 0.0 }
  in
  let sat = Loadgen.saturation_qps spec in
  Alcotest.(check (float 1e-6)) "saturation point" 200.0 sat;
  let below = Loadgen.run spec ~qps:(sat *. 0.5) ~requests:400 in
  let above = Loadgen.run spec ~qps:(sat *. 1.5) ~requests:400 in
  Alcotest.(check bool) "overload explodes p99" true
    (Units.( > ) above.Loadgen.p99 (Units.scale below.Loadgen.p99 4.0))

let test_loadgen_contention_hurts () =
  let base = { Loadgen.cores = 32; width = 2; service = Units.ms 10; contention = 0.0 } in
  let contended = { base with Loadgen.contention = 0.05 } in
  let a = Loadgen.run base ~qps:100.0 ~requests:400 in
  let b = Loadgen.run contended ~qps:100.0 ~requests:400 in
  Alcotest.(check bool) "contention raises p99" true
    (Units.( > ) b.Loadgen.p99 a.Loadgen.p99)

let test_loadgen_width_check () =
  match
    Loadgen.run
      { Loadgen.cores = 2; width = 4; service = Units.ms 1; contention = 0.0 }
      ~qps:1.0 ~requests:1
  with
  | _ -> Alcotest.fail "width > cores must fail"
  | exception Invalid_argument _ -> ()

(* --- Fig. 10 single-function cold starts --- *)

let test_figure10_shape () =
  let entries = Singlefn.figure10 () in
  let get label =
    match List.find_opt (fun (e : Singlefn.entry) -> e.Singlefn.label = label) entries with
    | Some e -> Units.to_ms e.Singlefn.cold_start
    | None -> Alcotest.fail ("missing " ^ label)
  in
  Alcotest.(check bool) "AS ~1.3ms" true (get "AS" > 1.2 && get "AS" < 1.45);
  Alcotest.(check bool) "load-all ~89.4ms" true
    (get "AS-load-all" > 87.0 && get "AS-load-all" < 92.0);
  Alcotest.(check bool) "Faastlane-T < AS" true (get "Faastlane-T" < get "AS");
  Alcotest.(check bool) "Wasmer-T ~7.6" true (get "Wasmer-T" > 7.0 && get "Wasmer-T" < 8.0);
  Alcotest.(check bool) "Wasmer ~342" true (get "Wasmer" > 330.0 && get "Wasmer" < 355.0);
  Alcotest.(check bool) "Virtines ~22.8" true (get "Virtines" > 21.0 && get "Virtines" < 25.0);
  Alcotest.(check bool) "AS < Virtines" true (get "AS" < get "Virtines");
  Alcotest.(check bool) "python runtimes slowest" true
    (get "AS-Py" > get "gVisor" && get "Faasm-Py" > get "AS-Py")

let suite =
  [
    Alcotest.test_case "pipe validates everywhere" `Slow test_all_platforms_validate_pipe;
    Alcotest.test_case "wordcount validates (rust)" `Slow test_all_platforms_validate_wordcount;
    Alcotest.test_case "wordcount validates (wasm)" `Slow test_wasm_platforms_validate_wordcount;
    Alcotest.test_case "sorting validates" `Slow test_all_platforms_validate_sorting;
    Alcotest.test_case "chain validates" `Slow test_all_platforms_validate_chain;
    Alcotest.test_case "image pipeline on AS" `Quick test_image_pipeline_on_alloystack;
    Alcotest.test_case "kata cold start dominates" `Quick test_kata_cold_start_dominates;
    Alcotest.test_case "AS beats OpenFaaS" `Slow test_alloystack_beats_openfaas;
    Alcotest.test_case "AS-C beats Faasm on chain" `Quick test_alloystack_beats_faasm_on_chain;
    Alcotest.test_case "IFI overhead bounded" `Quick test_ifi_costs_a_little;
    Alcotest.test_case "Fig.14 ablation ordering" `Quick test_ablation_ordering;
    Alcotest.test_case "AS-Py runtime init dominates" `Quick test_python_dominated_by_runtime_init;
    Alcotest.test_case "Fig.17b cpu/memory reduction" `Quick test_cpu_memory_reduction_fig17b;
    Alcotest.test_case "phase totals populated" `Quick test_phase_totals_populated;
    Alcotest.test_case "speedup helper" `Quick test_speedup_helper;
    Alcotest.test_case "Fig.10 cold-start shape" `Quick test_figure10_shape;
    Alcotest.test_case "loadgen light load" `Quick test_loadgen_light_load_no_queueing;
    Alcotest.test_case "loadgen saturation" `Quick test_loadgen_saturation_queues;
    Alcotest.test_case "loadgen contention" `Quick test_loadgen_contention_hurts;
    Alcotest.test_case "loadgen width check" `Quick test_loadgen_width_check;
  ]
