lib/workloads/compile_app.ml: Bytes Fctx Int64 Isa Printf Sim String Wasm
