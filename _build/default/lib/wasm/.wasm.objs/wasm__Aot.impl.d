lib/wasm/aot.ml: Array Bytes Char Format Hashtbl Instr Int64 Isa List Printf String Validate Wmodule
