test/test_net.ml: Alcotest Bytes Char Clock Gen Http Link List Netsim QCheck QCheck_alcotest Redis Sim String Tcp Units
