type policy = First_fit | Best_fit

type hole = { addr : int; size : int }

type t = {
  policy : policy;
  base : int;
  size : int;
  mutable holes : hole list;  (** Address-ordered, non-adjacent. *)
  live : (int, int) Hashtbl.t;  (** addr -> size *)
  fault : Sim.Fault.t option;
}

let create ?(policy = First_fit) ?fault ~base ~size () =
  if size <= 0 then invalid_arg "Alloc.create: size must be positive";
  {
    policy;
    base;
    size;
    holes = [ { addr = base; size } ];
    live = Hashtbl.create 64;
    fault;
  }

let align_up addr align = (addr + align - 1) land lnot (align - 1)

(* In-hole placement: returns (padding, usable) if the hole can serve an
   aligned block of [size]. *)
let fit hole ~size ~align =
  let aligned = align_up hole.addr align in
  let padding = aligned - hole.addr in
  if padding + size <= hole.size then Some padding else None

let injected_failure t =
  match t.fault with
  | Some plan -> Sim.Fault.check plan ~site:Sim.Fault.site_mem_alloc
  | None -> false

let alloc t ~size ~align =
  if size <= 0 then invalid_arg "Alloc.alloc: size must be positive";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Alloc.alloc: align must be a positive power of two";
  if injected_failure t then None
  else
  let candidates =
    List.filter_map
      (fun h -> match fit h ~size ~align with Some pad -> Some (h, pad) | None -> None)
      t.holes
  in
  let chosen =
    match t.policy, candidates with
    | _, [] -> None
    | First_fit, c :: _ -> Some c
    | Best_fit, c :: cs ->
        (* smallest hole that fits *)
        Some
          (List.fold_left
             (fun ((bh : hole), bp) ((h : hole), p) ->
               if h.size < bh.size then (h, p) else (bh, bp))
             c cs)
  in
  match chosen with
  | None -> None
  | Some (hole, padding) ->
      let addr = hole.addr + padding in
      (* Replace the hole with up to two remainders: the padding before
         the block and the tail after it. *)
      let before = { addr = hole.addr; size = padding } in
      let after =
        { addr = addr + size; size = hole.size - padding - size }
      in
      let keep (h : hole) = h.size > 0 in
      let rec replace = function
        | [] -> []
        | h :: rest when h.addr = hole.addr ->
            List.filter keep [ before; after ] @ rest
        | h :: rest -> h :: replace rest
      in
      t.holes <- replace t.holes;
      Hashtbl.replace t.live addr size;
      Some addr

let insert_coalesced holes hole =
  (* Keep address order; merge with adjacent holes. *)
  let rec go = function
    | [] -> [ hole ]
    | h :: rest when hole.addr + hole.size < h.addr -> hole :: h :: rest
    | h :: rest when hole.addr + hole.size = h.addr ->
        { addr = hole.addr; size = hole.size + h.size } :: rest
    | h :: rest when h.addr + h.size = hole.addr ->
        go_merge { addr = h.addr; size = h.size + hole.size } rest
    | h :: rest -> h :: go rest
  and go_merge merged = function
    | h :: rest when merged.addr + merged.size = h.addr ->
        { addr = merged.addr; size = merged.size + h.size } :: rest
    | rest -> merged :: rest
  in
  go holes

let free t addr =
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg (Printf.sprintf "Alloc.free: 0x%x is not a live block" addr)
  | Some size ->
      Hashtbl.remove t.live addr;
      t.holes <- insert_coalesced t.holes { addr; size }

let allocated_bytes t = Hashtbl.fold (fun _ size acc -> acc + size) t.live 0

let free_bytes t = List.fold_left (fun acc (h : hole) -> acc + h.size) 0 t.holes

let largest_hole t = List.fold_left (fun acc (h : hole) -> Stdlib.max acc h.size) 0 t.holes

let hole_count t = List.length t.holes

let live_blocks t =
  Hashtbl.fold (fun addr size acc -> (addr, size) :: acc) t.live []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let block_size t addr = Hashtbl.find_opt t.live addr

let reset t =
  Hashtbl.reset t.live;
  t.holes <- [ { addr = t.base; size = t.size } ]
