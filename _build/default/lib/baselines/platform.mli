(** Common surface every serverless platform implements.

    A platform takes an {!Fctx.app} (workload code is shared — design
    decision 4 of DESIGN.md) and runs it end to end, producing
    comparable metrics. *)

open Workloads

type metrics = {
  platform : string;
  e2e : Sim.Units.time;
  cold_start : Sim.Units.time;  (** Trigger to first user instruction. *)
  phase_totals : (string * Sim.Units.time) list;
  cpu_time : Sim.Units.time;  (** Summed busy time across all threads. *)
  peak_rss : int;  (** Bytes, including sandbox overheads. *)
  validated : (unit, string) result;
}

val phase_total : metrics -> string -> Sim.Units.time

type t = { name : string; run : ?cores:int -> Fctx.app -> metrics }

val speedup : metrics -> over:metrics -> float
(** [speedup m ~over] = over.e2e / m.e2e — how much faster [m] is. *)

val check_validated : metrics -> unit
(** Raises [Failure] when the run produced a wrong answer — benches
    call this so a miscomputation can never masquerade as a speedup. *)
