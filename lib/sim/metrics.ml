(* Histogram / gauge registry.  Handles are names; the backing cells
   live in a registry resolved through domain-local storage, so
   [Par.with_shard] can route a parallel task's observations into a
   private shard (no locks on the hot path) and [merge_into] folds
   them back at a deterministic join point.

   Aggregates (bucket counts, count, sum, min, max) are always exact.
   The raw-sample reservoir feeding percentile queries can be thinned
   1-in-k ([set_raw_sample_every]) so memory stays O(count / k) under
   10^5-request load; with k = 1 (the default) behaviour and floating
   point results are bit-identical to the unsampled registry.  While
   thinning is active every observation additionally feeds a
   deterministic t-digest, and percentile queries answer from that
   sketch — full-population estimates in O(1) memory — instead of the
   thinned reservoir or the coarse log2 buckets. *)

type histo_snapshot = {
  hs_name : string;
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
  hs_buckets : (int * int) list;
}

type histo = {
  buckets : int array;  (* 64 log2 buckets; index via [bucket_index] *)
  samples : Stats.t;  (* raw reservoir for percentiles; may be thinned *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;  (* infinity when empty *)
  mutable h_max : float;  (* neg_infinity when empty *)
  mutable h_seen : int;  (* reservoir offers, kept or not *)
  mutable h_sketch : Sketch.Tdigest.t option;
      (* full-population digest, allocated on the first thinned
         observation; [None] at k = 1 so the default path never touches
         it *)
  mutable h_snap : histo_snapshot option;
      (* memoized snapshot, invalidated by any mutation — repeated
         exporter reads (a Prometheus scrape per soak snapshot line)
         cost one hashtable walk, not a percentile query per cell *)
}

type registry = {
  r_histograms : (string, histo) Hashtbl.t;
  r_gauges : (string, float ref) Hashtbl.t;
  mutable r_every : int;  (* keep 1 raw sample in r_every *)
  mutable r_phase : int;
}

type histogram = string
type gauge = string

let create_registry () =
  {
    r_histograms = Hashtbl.create 16;
    r_gauges = Hashtbl.create 16;
    r_every = 1;
    r_phase = 0;
  }

let default = create_registry ()

let current_key = Domain.DLS.new_key create_registry
let () = Domain.DLS.set current_key default
let current () = Domain.DLS.get current_key
let set_current r = Domain.DLS.set current_key r

let set_raw_sample_every ?(seed = 0) every =
  if every < 1 then invalid_arg "Metrics.set_raw_sample_every: every must be >= 1";
  let r = current () in
  r.r_every <- every;
  r.r_phase <- ((seed mod every) + every) mod every

let raw_sample_every () = (current ()).r_every

let histo_cell r name =
  match Hashtbl.find_opt r.r_histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          buckets = Array.make 64 0;
          samples = Stats.create ();
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
          h_seen = 0;
          h_sketch = None;
          h_snap = None;
        }
      in
      Hashtbl.replace r.r_histograms name h;
      h

let gauge_cell r name =
  match Hashtbl.find_opt r.r_gauges name with
  | Some g -> g
  | None ->
      let g = ref 0.0 in
      Hashtbl.replace r.r_gauges name g;
      g

(* Prometheus-style dimensional names: [labels "x" ["ep","a"]] is
   [x{ep="a"}].  Keys are sorted so one label set always encodes to
   one name, making labelled series as deterministic as plain ones —
   a handle is still just a name, so the encoding works for
   histograms, gauges, [Stats.Counter]s and [Timeseries] series
   alike.  Exporters split at the first '{' to recover the base. *)
let labels name kvs =
  match kvs with
  | [] -> name
  | kvs ->
      let esc v =
        let buf = Buffer.create (String.length v) in
        String.iter
          (fun c ->
            match c with
            | '"' | '\\' ->
                Buffer.add_char buf '\\';
                Buffer.add_char buf c
            | '\n' -> Buffer.add_string buf "\\n"
            | c -> Buffer.add_char buf c)
          v;
        Buffer.contents buf
      in
      let kvs = List.sort (fun (a, _) (b, _) -> String.compare a b) kvs in
      let parts = List.map (fun (k, v) -> k ^ "=\"" ^ esc v ^ "\"") kvs in
      name ^ "{" ^ String.concat "," parts ^ "}"

let base_name name =
  match String.index_opt name '{' with
  | Some i -> String.sub name 0 i
  | None -> name

(* Registration persists across [reset] so never-observed series still
   export (with zero counts). *)
let histogram name =
  ignore (histo_cell (current ()) name);
  name

(* Bucket on the integer part so the boundary behaviour is exact:
   bucket 0 <-> v < 1, bucket i <-> 2^(i-1) <= v < 2^i.  Int64 bit
   length is deterministic where float log2 near powers of two is not. *)
let bucket_index v =
  let v = if v < 0.0 then 0.0 else v in
  let n = Int64.of_float v in
  let rec bits acc n = if n = 0L then acc else bits (acc + 1) (Int64.shift_right_logical n 1) in
  let i = bits 0 n in
  if i > 63 then 63 else i

let bucket_bound i = 2.0 ** float_of_int i

(* One observation: exact aggregates unconditionally, reservoir offer
   through the registry's 1-in-k sampler. *)
let observe_cell r (cell : histo) v =
  cell.h_snap <- None;
  let i = bucket_index v in
  cell.buckets.(i) <- cell.buckets.(i) + 1;
  cell.h_count <- cell.h_count + 1;
  cell.h_sum <- cell.h_sum +. v;
  if v < cell.h_min then cell.h_min <- v;
  if v > cell.h_max then cell.h_max <- v;
  let keep = r.r_every <= 1 || cell.h_seen mod r.r_every = r.r_phase in
  cell.h_seen <- cell.h_seen + 1;
  if keep then Stats.add cell.samples v;
  if r.r_every > 1 then begin
    let d =
      match cell.h_sketch with
      | Some d -> d
      | None ->
          let d = Sketch.Tdigest.create () in
          cell.h_sketch <- Some d;
          d
    in
    Sketch.Tdigest.add d v
  end

let observe h v =
  let r = current () in
  observe_cell r (histo_cell r h) v

let observe_time h d = observe h (Int64.to_float (Units.to_ns d))

let histogram_count h = (histo_cell (current ()) h).h_count
let histogram_sum h = (histo_cell (current ()) h).h_sum

let gauge name =
  ignore (gauge_cell (current ()) name);
  name

let set_gauge g v = gauge_cell (current ()) g := v

let max_gauge g v =
  let cell = gauge_cell (current ()) g in
  if v > !cell then cell := v

let gauge_value g = !(gauge_cell (current ()) g)

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_histograms : histo_snapshot list;
}

(* Percentile estimate when the raw reservoir has been thinned to
   nothing but buckets still hold counts: walk the cumulative bucket
   counts and return the matched bucket's upper bound. *)
let bucket_percentile (h : histo) p =
  let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.h_count)) in
  let rank = if rank < 1 then 1 else rank in
  let acc = ref 0 and ans = ref 0.0 and found = ref false in
  for i = 0 to 63 do
    if not !found then begin
      acc := !acc + h.buckets.(i);
      if !acc >= rank then begin
        ans := bucket_bound i;
        found := true
      end
    end
  done;
  !ans

let snapshot_histogram name (h : histo) =
  match h.h_snap with
  | Some s -> s
  | None ->
  let empty = h.h_count = 0 in
  let lossless = (not (Stats.is_empty h.samples)) && Stats.count h.samples = h.h_count in
  let pct p =
    if empty then 0.0
    else if lossless then Stats.percentile h.samples p
    else
      match h.h_sketch with
      | Some d when Sketch.Tdigest.count d > 0.0 -> Sketch.Tdigest.percentile d p
      | _ ->
          if Stats.is_empty h.samples then bucket_percentile h p
          else Stats.percentile h.samples p
  in
  let buckets = ref [] in
  for i = 63 downto 0 do
    if h.buckets.(i) > 0 then buckets := (i, h.buckets.(i)) :: !buckets
  done;
  let s =
    {
      hs_name = name;
      hs_count = h.h_count;
      hs_sum = h.h_sum;
      hs_min = (if empty then 0.0 else h.h_min);
      hs_max = (if empty then 0.0 else h.h_max);
      hs_p50 = pct 50.0;
      hs_p90 = pct 90.0;
      hs_p99 = pct 99.0;
      hs_buckets = !buckets;
    }
  in
  h.h_snap <- Some s;
  s

let snapshot () =
  let r = current () in
  let gs =
    Hashtbl.fold (fun n g acc -> (n, !g) :: acc) r.r_gauges []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let hs =
    Hashtbl.fold (fun n h acc -> snapshot_histogram n h :: acc) r.r_histograms []
    |> List.sort (fun a b -> String.compare a.hs_name b.hs_name)
  in
  { snap_counters = Stats.counters (); snap_gauges = gs; snap_histograms = hs }

let clear_cell (h : histo) =
  Array.fill h.buckets 0 64 0;
  Stats.clear h.samples;
  h.h_count <- 0;
  h.h_sum <- 0.0;
  h.h_min <- infinity;
  h.h_max <- neg_infinity;
  h.h_seen <- 0;
  (match h.h_sketch with Some d -> Sketch.Tdigest.clear d | None -> ());
  h.h_snap <- None

let reset () =
  let r = current () in
  Hashtbl.iter (fun _ h -> clear_cell h) r.r_histograms;
  Hashtbl.iter (fun _ g -> g := 0.0) r.r_gauges;
  Stats.reset_counters ()

(* Scrub a registry in place for reuse as a fresh shard: histogram
   cells are cleared but *kept* (their bucket arrays, reservoirs and
   digests are the expensive part of a shard — reusing them is the
   point), gauge cells are dropped (they are single refs; keeping them
   would make a recycled shard merge gauge names a fresh shard never
   observed).  Sampling state returns to the [create_registry]
   default. *)
let reset_registry (r : registry) =
  Hashtbl.iter (fun _ h -> clear_cell h) r.r_histograms;
  Hashtbl.reset r.r_gauges;
  r.r_every <- 1;
  r.r_phase <- 0

(* Fold a shard registry into the current one.  Series are visited in
   sorted-name order so the merged sequence depends only on the order
   of [merge_into] calls, never on host completion order.

   A lossless shard (its reservoir kept every observation — the normal
   case for per-request shards) is replayed sample by sample, which
   keeps float accumulation order — and therefore sums and percentile
   views — bit-identical to observing directly, while the destination
   applies its own 1-in-k reservoir thinning.  A shard whose reservoir
   was itself thinned merges by exact aggregates, and its surviving
   raw samples transfer without a second thinning.  Gauges merge with
   max (every gauge in the tree is a high-watermark). *)
let merge_into (src : registry) =
  let dst = current () in
  Hashtbl.fold (fun n h acc -> (n, h) :: acc) src.r_histograms []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (n, (h : histo)) ->
         if h.h_count = 0 && h.h_seen = 0 && Stats.is_empty h.samples then
           (* Nothing was observed: skip, so a recycled shard carrying
              cleared cells for series from earlier requests merges
              byte-identically to a fresh shard. *)
           ()
         else
         let cell = histo_cell dst n in
         if Stats.count h.samples = h.h_count then
           List.iter (fun v -> observe_cell dst cell v) (Stats.to_list h.samples)
         else begin
           cell.h_snap <- None;
           for i = 0 to 63 do
             cell.buckets.(i) <- cell.buckets.(i) + h.buckets.(i)
           done;
           cell.h_count <- cell.h_count + h.h_count;
           cell.h_sum <- cell.h_sum +. h.h_sum;
           if h.h_min < cell.h_min then cell.h_min <- h.h_min;
           if h.h_max > cell.h_max then cell.h_max <- h.h_max;
           cell.h_seen <- cell.h_seen + h.h_seen;
           List.iter (fun v -> Stats.add cell.samples v) (Stats.to_list h.samples);
           (* Carry the shard's full-population digest so destination
              percentiles still cover every observation. *)
           match h.h_sketch with
           | None -> ()
           | Some src_d ->
               let dst_d =
                 match cell.h_sketch with
                 | Some d -> d
                 | None ->
                     let d = Sketch.Tdigest.create () in
                     cell.h_sketch <- Some d;
                     d
               in
               Sketch.Tdigest.merge_into ~src:src_d ~dst:dst_d
         end);
  Hashtbl.fold (fun n g acc -> (n, !g) :: acc) src.r_gauges []
  |> List.iter (fun (n, v) ->
         let cell = gauge_cell dst n in
         if v > !cell then cell := v)
