type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

let request ?(headers = []) ?(body = "") ~meth ~path () =
  { meth; path; headers; body }

let ok ?(headers = []) body =
  { status = 200; reason = "OK"; resp_headers = headers; resp_body = body }

let error_response status reason =
  { status; reason; resp_headers = []; resp_body = reason }

let encode_headers headers body =
  let with_len = ("Content-Length", string_of_int (String.length body)) :: headers in
  String.concat "" (List.map (fun (k, v) -> k ^ ": " ^ v ^ "\r\n") with_len)

let encode_request r =
  Printf.sprintf "%s %s HTTP/1.1\r\n%s\r\n%s" r.meth r.path
    (encode_headers r.headers r.body)
    r.body

let encode_response r =
  Printf.sprintf "HTTP/1.1 %d %s\r\n%s\r\n%s" r.status r.reason
    (encode_headers r.resp_headers r.resp_body)
    r.resp_body

let split_head_body s =
  match String.index_opt s '\r' with
  | None -> Error "malformed: no CRLF"
  | Some _ -> begin
      let marker = "\r\n\r\n" in
      let rec find i =
        if i + 4 > String.length s then None
        else if String.sub s i 4 = marker then Some i
        else find (i + 1)
      in
      match find 0 with
      | None -> Error "malformed: no header/body separator"
      | Some i ->
          Ok (String.sub s 0 i, String.sub s (i + 4) (String.length s - i - 4))
    end

let parse_headers lines =
  List.filter_map
    (fun line ->
      match String.index_opt line ':' with
      | None -> None
      | Some i ->
          let k = String.sub line 0 i in
          let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
          Some (k, v))
    lines

let lines_of head = String.split_on_char '\n' head |> List.map (fun l -> String.trim l)

let decode_request s =
  match split_head_body s with
  | Error _ as e -> e
  | Ok (head, body) -> begin
      match lines_of head with
      | [] -> Error "malformed: empty request"
      | start :: rest -> begin
          match String.split_on_char ' ' start with
          | meth :: path :: _ -> Ok { meth; path; headers = parse_headers rest; body }
          | _ -> Error "malformed: bad request line"
        end
    end

let decode_response s =
  match split_head_body s with
  | Error _ as e -> e
  | Ok (head, body) -> begin
      match lines_of head with
      | [] -> Error "malformed: empty response"
      | start :: rest -> begin
          match String.split_on_char ' ' start with
          | _http :: code :: reason_parts ->
              (match int_of_string_opt code with
              | Some status ->
                  Ok
                    {
                      status;
                      reason = String.concat " " reason_parts;
                      resp_headers = parse_headers rest;
                      resp_body = body;
                    }
              | None -> Error "malformed: bad status code")
          | _ -> Error "malformed: bad status line"
        end
    end

let header headers name =
  let lower = String.lowercase_ascii name in
  List.find_map
    (fun (k, v) -> if String.lowercase_ascii k = lower then Some v else None)
    headers
