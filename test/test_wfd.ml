(* Tests for the WFD, trampoline, on-demand loading and the as-libos
   modules — the heart of the reproduction. *)

open Sim
open Mem
open Alloystack_core

let check_time = Alcotest.testable Units.pp Units.equal

let fresh_wfd ?features ?vfs () =
  let proc_table = Hostos.Process.create_table () in
  let clock = Clock.create () in
  let wfd = Wfd.create ?features ?vfs ~proc_table ~clock ~workflow_name:"test" () in
  (wfd, clock)

let spawn wfd = Wfd.spawn_function_thread wfd ~clock:(Clock.create ())

(* --- WFD lifecycle and partitioning --- *)

let test_wfd_create_maps_system () =
  let wfd, clock = fresh_wfd () in
  Alcotest.(check bool) "visor code mapped" true
    (Address_space.is_mapped wfd.Wfd.aspace Layout.visor_code.Layout.base);
  Alcotest.(check bool) "libos code mapped" true
    (Address_space.is_mapped wfd.Wfd.aspace Layout.libos_code.Layout.base);
  Alcotest.(check bool) "trampoline mapped" true
    (Address_space.is_mapped wfd.Wfd.aspace Layout.trampoline.Layout.base);
  Alcotest.(check bool) "creation charged" true
    (Units.( >= ) (Clock.now clock) Cost.wfd_create);
  Alcotest.(check int) "no modules yet" 0 (Hashtbl.length wfd.Wfd.loaded_modules)

let test_wfd_spawn_threads () =
  let wfd, _ = fresh_wfd () in
  let t0 = spawn wfd in
  let t1 = spawn wfd in
  Alcotest.(check int) "slots increment" 0 t0.Wfd.fn_slot;
  Alcotest.(check int) "slots increment 2" 1 t1.Wfd.fn_slot;
  (* Each slot's regions are mapped with that slot's key. *)
  let heap0 = (Layout.function_heap 0).Layout.base in
  Alcotest.(check bool) "heap mapped" true (Address_space.is_mapped wfd.Wfd.aspace heap0);
  Alcotest.(check int) "shared user key"
    (Prot.key_to_int Wfd.shared_user_key)
    (Prot.key_to_int (Address_space.key_of wfd.Wfd.aspace heap0))

let test_wfd_user_cannot_touch_system () =
  let wfd, _ = fresh_wfd () in
  let t = spawn wfd in
  (* User rights forbid the system partition. *)
  match
    Address_space.load_byte wfd.Wfd.aspace ~pkru:t.Wfd.pkru Layout.libos_code.Layout.base
  with
  | _ -> Alcotest.fail "user must not read libos code"
  | exception Address_space.Fault { kind = Address_space.Pkey_denied _; _ } -> ()

let test_wfd_user_can_touch_own_heap () =
  let wfd, _ = fresh_wfd () in
  let t = spawn wfd in
  let heap = (Layout.function_heap 0).Layout.base in
  Address_space.store_byte wfd.Wfd.aspace ~pkru:t.Wfd.pkru heap 'x';
  Alcotest.(check char) "own heap accessible" 'x'
    (Address_space.load_byte wfd.Wfd.aspace ~pkru:t.Wfd.pkru heap)

let test_wfd_shared_mode_cross_function_access () =
  (* Without IFI, functions share the user key: function 1 can read
     function 0's heap (same-tenant trust, §3.1). *)
  let wfd, _ = fresh_wfd () in
  let t0 = spawn wfd in
  let t1 = spawn wfd in
  let heap0 = (Layout.function_heap 0).Layout.base in
  Address_space.store_byte wfd.Wfd.aspace ~pkru:t0.Wfd.pkru heap0 'a';
  Alcotest.(check char) "shared key allows" 'a'
    (Address_space.load_byte wfd.Wfd.aspace ~pkru:t1.Wfd.pkru heap0)

let test_wfd_ifi_blocks_cross_function () =
  let features = { Wfd.default_features with Wfd.ifi = true } in
  let wfd, _ = fresh_wfd ~features () in
  let t0 = spawn wfd in
  let t1 = spawn wfd in
  let heap0 = (Layout.function_heap 0).Layout.base in
  Address_space.store_byte wfd.Wfd.aspace ~pkru:t0.Wfd.pkru heap0 'a';
  match Address_space.load_byte wfd.Wfd.aspace ~pkru:t1.Wfd.pkru heap0 with
  | _ -> Alcotest.fail "IFI must block cross-function reads"
  | exception Address_space.Fault { kind = Address_space.Pkey_denied _; _ } -> ()

let test_wfd_destroy () =
  let wfd, _ = fresh_wfd () in
  Wfd.destroy wfd;
  Wfd.destroy wfd (* idempotent *);
  match spawn wfd with
  | _ -> Alcotest.fail "spawn after destroy must fail"
  | exception Invalid_argument _ -> ()

(* --- trampoline --- *)

let test_trampoline_switches_rights () =
  let wfd, _ = fresh_wfd () in
  let t = spawn wfd in
  Alcotest.(check bool) "starts in user" false (Trampoline.in_system t);
  let observed =
    Trampoline.enter_system wfd t (fun () ->
        (* Inside: the system partition is readable. *)
        ignore
          (Address_space.load_byte wfd.Wfd.aspace ~pkru:t.Wfd.pkru
             Layout.libos_code.Layout.base);
        Trampoline.in_system t)
  in
  Alcotest.(check bool) "was in system" true observed;
  Alcotest.(check bool) "restored to user" false (Trampoline.in_system t);
  Alcotest.(check int) "crossing counted" 1 wfd.Wfd.trampoline_crossings

let test_trampoline_not_reentrant () =
  let wfd, _ = fresh_wfd () in
  let t = spawn wfd in
  match
    Trampoline.enter_system wfd t (fun () ->
        Trampoline.enter_system wfd t (fun () -> ()))
  with
  | _ -> Alcotest.fail "nested enter must fail"
  | exception Trampoline.Not_in_user_context -> ()

let test_trampoline_restores_on_exception () =
  let wfd, _ = fresh_wfd () in
  let t = spawn wfd in
  (try Trampoline.enter_system wfd t (fun () -> failwith "boom") with
  | Failure _ -> ());
  Alcotest.(check bool) "rights restored after raise" false (Trampoline.in_system t)

let test_trampoline_charges_time () =
  let wfd, _ = fresh_wfd () in
  let t = spawn wfd in
  let before = Clock.now t.Wfd.clock in
  Trampoline.enter_system wfd t (fun () -> ());
  Alcotest.check check_time "two switches"
    (Units.scale Cost.trampoline_switch 2.0)
    (Units.sub (Clock.now t.Wfd.clock) before)

(* --- on-demand loading (Fig. 7) --- *)

let test_entry_miss_then_fast_path () =
  let wfd, _ = fresh_wfd () in
  let clock = Clock.create () in
  (match Libos.ensure_entry wfd ~clock "alloc_buffer" with
  | `Slow -> ()
  | `Fast -> Alcotest.fail "first call must be the slow path");
  Alcotest.(check bool) "mm loaded" true (Wfd.is_loaded wfd "mm");
  let after_load = Clock.now clock in
  Alcotest.(check bool) "load took real time" true
    (Units.( > ) after_load (Cost.module_load "mm"));
  (match Libos.ensure_entry wfd ~clock "alloc_buffer" with
  | `Fast -> ()
  | `Slow -> Alcotest.fail "second call must be fast");
  Alcotest.check check_time "fast path costs nothing" after_load (Clock.now clock);
  Alcotest.(check int) "one miss" 1 wfd.Wfd.entry_misses;
  Alcotest.(check int) "one hit" 1 wfd.Wfd.entry_hits

let test_module_dependencies_load_first () =
  let wfd, _ = fresh_wfd () in
  let clock = Clock.create () in
  (* fdtab depends on fatfs and stdio. *)
  Libos.load_module wfd ~clock "fdtab";
  List.iter
    (fun m -> Alcotest.(check bool) (m ^ " loaded") true (Wfd.is_loaded wfd m))
    [ "fdtab"; "fatfs"; "stdio" ];
  Alcotest.(check bool) "unrelated not loaded" false (Wfd.is_loaded wfd "socket")

let test_load_idempotent () =
  let wfd, _ = fresh_wfd () in
  let clock = Clock.create () in
  Libos.load_module wfd ~clock "time";
  let t1 = Clock.now clock in
  Libos.load_module wfd ~clock "time";
  Alcotest.check check_time "second load free" t1 (Clock.now clock)

let test_load_all () =
  let wfd, _ = fresh_wfd () in
  let clock = Clock.create () in
  Libos.load_all wfd ~clock;
  Alcotest.(check int) "all seven" 7 (Hashtbl.length wfd.Wfd.loaded_modules);
  List.iter
    (fun m -> Alcotest.(check bool) m true (Wfd.is_loaded wfd m))
    Libos.module_names

let test_entry_table_is_per_wfd () =
  let wfd1, _ = fresh_wfd () in
  let wfd2, _ = fresh_wfd () in
  Libos.load_module wfd1 ~clock:(Clock.create ()) "mm";
  Alcotest.(check bool) "wfd2 unaffected" false (Wfd.is_loaded wfd2 "mm")

let test_providing_unknown_entry () =
  match Libos.providing "not_an_entry" with
  | _ -> Alcotest.fail "must raise"
  | exception Invalid_argument _ -> ()

(* --- mm module: buffers --- *)

let mm_wfd () =
  let wfd, _ = fresh_wfd () in
  Libos.load_module wfd ~clock:(Clock.create ()) "mm";
  wfd

let test_mm_alloc_acquire () =
  let wfd = mm_wfd () in
  let clock = Clock.create () in
  let buf =
    match Libos_mm.alloc_buffer wfd ~clock ~slot:"s" ~size:10_000 ~fingerprint:42L with
    | Ok b -> b
    | Error e -> Alcotest.fail (Errno.to_string e)
  in
  Alcotest.(check bool) "pages mapped with buffer key" true
    (Prot.key_to_int (Address_space.key_of wfd.Wfd.aspace buf.Libos_mm.addr)
    = Prot.key_to_int Wfd.buffer_key);
  (match Libos_mm.acquire_buffer wfd ~clock ~slot:"s" ~fingerprint:42L with
  | Ok b -> Alcotest.(check int) "same addr" buf.Libos_mm.addr b.Libos_mm.addr
  | Error e -> Alcotest.fail (Errno.to_string e));
  (* Single ownership: the second acquire fails. *)
  match Libos_mm.acquire_buffer wfd ~clock ~slot:"s" ~fingerprint:42L with
  | Error Errno.Enoent -> ()
  | Ok _ -> Alcotest.fail "slot must be consumed"
  | Error e -> Alcotest.fail (Errno.to_string e)

let test_mm_fingerprint_mismatch () =
  let wfd = mm_wfd () in
  let clock = Clock.create () in
  ignore (Libos_mm.alloc_buffer wfd ~clock ~slot:"s" ~size:100 ~fingerprint:1L);
  (match Libos_mm.acquire_buffer wfd ~clock ~slot:"s" ~fingerprint:2L with
  | Error Errno.Einval -> ()
  | Ok _ | Error _ -> Alcotest.fail "fingerprint mismatch must be EINVAL");
  (* The failed acquire must not consume the slot. *)
  match Libos_mm.acquire_buffer wfd ~clock ~slot:"s" ~fingerprint:1L with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Errno.to_string e)

let test_mm_duplicate_slot () =
  let wfd = mm_wfd () in
  let clock = Clock.create () in
  ignore (Libos_mm.alloc_buffer wfd ~clock ~slot:"s" ~size:100 ~fingerprint:1L);
  match Libos_mm.alloc_buffer wfd ~clock ~slot:"s" ~size:100 ~fingerprint:1L with
  | Error Errno.Eexist -> ()
  | Ok _ | Error _ -> Alcotest.fail "duplicate slot must be EEXIST"

let test_mm_free_unmaps () =
  let wfd = mm_wfd () in
  let clock = Clock.create () in
  let buf =
    Result.get_ok (Libos_mm.alloc_buffer wfd ~clock ~slot:"s" ~size:8192 ~fingerprint:1L)
  in
  let b = Result.get_ok (Libos_mm.acquire_buffer wfd ~clock ~slot:"s" ~fingerprint:1L) in
  Libos_mm.free_buffer wfd b;
  Alcotest.(check bool) "unmapped" false
    (Address_space.is_mapped wfd.Wfd.aspace buf.Libos_mm.addr);
  Alcotest.(check int) "no live bytes" 0 (Libos_mm.live_buffer_bytes wfd)

let test_mm_slot_listing () =
  let wfd = mm_wfd () in
  let clock = Clock.create () in
  ignore (Libos_mm.alloc_buffer wfd ~clock ~slot:"a" ~size:10 ~fingerprint:1L);
  ignore (Libos_mm.alloc_buffer wfd ~clock ~slot:"b" ~size:10 ~fingerprint:1L);
  Alcotest.(check (list string)) "live slots" [ "a"; "b" ] (Libos_mm.live_slots wfd);
  Alcotest.(check bool) "peek" true (Libos_mm.peek_slot wfd "a" <> None);
  Alcotest.(check bool) "peek missing" true (Libos_mm.peek_slot wfd "zz" = None)

let test_mm_mmap () =
  let wfd = mm_wfd () in
  let t = spawn wfd in
  let clock = Clock.create () in
  let addr =
    Result.get_ok (Libos_mm.mmap wfd ~clock ~thread:t ~len:100_000)
  in
  (* The mapping is private to the function: its own key tags it. *)
  Address_space.store_byte wfd.Wfd.aspace ~pkru:t.Wfd.pkru addr 'm';
  Alcotest.(check char) "mmap usable" 'm'
    (Address_space.load_byte wfd.Wfd.aspace ~pkru:t.Wfd.pkru addr);
  let addr2 = Result.get_ok (Libos_mm.mmap wfd ~clock ~thread:t ~len:4096) in
  Alcotest.(check bool) "mmaps do not overlap" true (addr2 >= addr + 100_000)

(* --- fdtab / fatfs / stdio / time modules --- *)

let io_wfd () =
  let wfd, _ = fresh_wfd () in
  Libos.load_module wfd ~clock:(Clock.create ()) "fdtab";
  wfd

let test_fdtab_file_io () =
  let wfd = io_wfd () in
  let clock = Clock.create () in
  let fd =
    Result.get_ok (Libos_fdtab.openf wfd ~clock ~path:"/data.txt" ~create:true)
  in
  ignore (Result.get_ok (Libos_fdtab.write wfd ~clock ~fd (Bytes.of_string "hello ")));
  ignore (Result.get_ok (Libos_fdtab.write wfd ~clock ~fd (Bytes.of_string "world")));
  Result.get_ok (Libos_fdtab.close wfd ~clock ~fd);
  let fd2 = Result.get_ok (Libos_fdtab.openf wfd ~clock ~path:"/data.txt" ~create:false) in
  let part1 = Result.get_ok (Libos_fdtab.read wfd ~clock ~fd:fd2 ~len:6) in
  let part2 = Result.get_ok (Libos_fdtab.read wfd ~clock ~fd:fd2 ~len:100) in
  Alcotest.(check string) "sequential reads" "hello world"
    (Bytes.to_string part1 ^ Bytes.to_string part2)

let test_fdtab_errors () =
  let wfd = io_wfd () in
  let clock = Clock.create () in
  (match Libos_fdtab.openf wfd ~clock ~path:"/missing" ~create:false with
  | Error Errno.Enoent -> ()
  | Ok _ | Error _ -> Alcotest.fail "missing file must be ENOENT");
  (match Libos_fdtab.read wfd ~clock ~fd:99 ~len:1 with
  | Error Errno.Ebadf -> ()
  | Ok _ | Error _ -> Alcotest.fail "bad fd must be EBADF");
  match Libos_fdtab.close wfd ~clock ~fd:99 with
  | Error Errno.Ebadf -> ()
  | Ok _ | Error _ -> Alcotest.fail "bad close must be EBADF"

let test_fdtab_stdout () =
  let wfd = io_wfd () in
  let clock = Clock.create () in
  let fd = Result.get_ok (Libos_fdtab.openf wfd ~clock ~path:"/dev/stdout" ~create:false) in
  ignore (Result.get_ok (Libos_fdtab.write wfd ~clock ~fd (Bytes.of_string "console!")));
  Alcotest.(check string) "console output" "console!" (Libos_stdio.output wfd);
  match Libos_fdtab.read wfd ~clock ~fd ~len:1 with
  | Error Errno.Einval -> ()
  | Ok _ | Error _ -> Alcotest.fail "reading stdout must be EINVAL"

let test_fatfs_module_charges_clock () =
  let wfd, _ = fresh_wfd () in
  Libos.load_module wfd ~clock:(Clock.create ()) "fatfs";
  let clock = Clock.create () in
  ignore (Libos_fatfs.fatfs_write wfd ~clock "/f" (Bytes.make 1_000_000 'x'));
  let after_write = Clock.now clock in
  Alcotest.(check bool) "write charged" true (Units.( > ) after_write Units.zero);
  ignore (Result.get_ok (Libos_fatfs.fatfs_read wfd ~clock "/f"));
  Alcotest.(check bool) "read slower than write (fatfs)" true
    (Units.( > ) (Units.sub (Clock.now clock) after_write) after_write)

let test_time_module () =
  let wfd, _ = fresh_wfd () in
  Libos.load_module wfd ~clock:(Clock.create ()) "time";
  let clock = Clock.create ~at:(Units.ms 5) () in
  let ts = Libos_time.gettimeofday wfd ~clock in
  Alcotest.(check bool) "epoch offset" true (ts > Libos_time.epoch_ns);
  let ts2 = Libos_time.gettimeofday wfd ~clock in
  Alcotest.(check bool) "monotonic" true (ts2 > ts)

(* --- socket module --- *)

let test_socket_module () =
  Libos_socket.reset_host ();
  let wfd_a, _ = fresh_wfd () in
  let wfd_b, _ = fresh_wfd () in
  let clock = Clock.create () in
  Libos.load_module wfd_a ~clock "socket";
  Libos.load_module wfd_b ~clock "socket";
  (* Each WFD has its own IP. *)
  let ip_a = Option.get (Libos_socket.wfd_ip wfd_a) in
  let ip_b = Option.get (Libos_socket.wfd_ip wfd_b) in
  Alcotest.(check bool) "independent IPs" true (ip_a <> ip_b);
  (* b listens; a connects and sends. *)
  let server_clock = Clock.create () in
  let listener = Result.get_ok (Libos_socket.smol_bind wfd_b ~clock:server_clock ~port:80) in
  let client_clock = Clock.create () in
  let conn =
    Result.get_ok (Libos_socket.smol_connect wfd_a ~clock:client_clock ~ip:ip_b ~port:80)
  in
  let accepted = Result.get_ok (Libos_socket.smol_accept listener ~clock:server_clock) in
  ignore accepted;
  ignore (Libos_socket.smol_send conn ~clock:client_clock ~from_client:true (Bytes.of_string "GET /"));
  let got = Libos_socket.smol_recv conn ~clock:server_clock ~at_client:false 5 in
  Alcotest.(check bytes) "data over smoltcp" (Bytes.of_string "GET /") got;
  (* Port collision. *)
  match Libos_socket.smol_bind wfd_b ~clock:server_clock ~port:80 with
  | Error Errno.Eexist -> ()
  | Ok _ | Error _ -> Alcotest.fail "port reuse must be EEXIST"

let test_socket_connect_nowhere () =
  Libos_socket.reset_host ();
  let wfd, _ = fresh_wfd () in
  Libos.load_module wfd ~clock:(Clock.create ()) "socket";
  match
    Libos_socket.smol_connect wfd ~clock:(Clock.create ()) ~ip:"10.9.9.9" ~port:1
  with
  | Error Errno.Enotconn -> ()
  | Ok _ | Error _ -> Alcotest.fail "connect to nowhere must be ENOTCONN"

let test_http_server_between_wfds () =
  (* The http-server benchmark end to end: WFD B serves a fixed
     response over its smoltcp stack; WFD A connects through the
     simulated host network, sends a request and reads the reply —
     all bytes really crossing the TCP state machine. *)
  Libos_socket.reset_host ();
  let server_wfd, _ = fresh_wfd () in
  let client_wfd, _ = fresh_wfd () in
  let clock = Clock.create () in
  Libos.load_module server_wfd ~clock "socket";
  Libos.load_module client_wfd ~clock "socket";
  let server_clock = Clock.create () in
  let listener =
    Result.get_ok (Libos_socket.smol_bind server_wfd ~clock:server_clock ~port:8080)
  in
  let ip = Option.get (Libos_socket.wfd_ip server_wfd) in
  let client_clock = Clock.create () in
  let conn =
    Result.get_ok
      (Libos_socket.smol_connect client_wfd ~clock:client_clock ~ip ~port:8080)
  in
  ignore (Result.get_ok (Libos_socket.smol_accept listener ~clock:server_clock));
  (* Client sends an HTTP request. *)
  let request =
    Netsim.Http.encode_request (Netsim.Http.request ~meth:"GET" ~path:"/" ())
  in
  ignore
    (Libos_socket.smol_send conn ~clock:client_clock ~from_client:true
       (Bytes.of_string request));
  (* Server parses it and answers with the canned response. *)
  let raw =
    Libos_socket.smol_recv conn ~clock:server_clock ~at_client:false
      (String.length request)
  in
  (match Netsim.Http.decode_request (Bytes.to_string raw) with
  | Ok req -> Alcotest.(check string) "server parsed path" "/" req.Netsim.Http.path
  | Error e -> Alcotest.fail e);
  let response = Netsim.Http.ok "hi" in
  let encoded = Netsim.Http.encode_response response in
  ignore
    (Libos_socket.smol_send conn ~clock:server_clock ~from_client:false
       (Bytes.of_string encoded));
  let reply =
    Libos_socket.smol_recv conn ~clock:client_clock ~at_client:true
      (String.length encoded)
  in
  (match Netsim.Http.decode_response (Bytes.to_string reply) with
  | Ok resp ->
      Alcotest.(check int) "status" 200 resp.Netsim.Http.status;
      Alcotest.(check string) "body" "hi" resp.Netsim.Http.resp_body
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "round trip took virtual time" true
    (Units.( > ) (Clock.now client_clock) Units.zero)

let test_fig5_http_client_over_fd () =
  (* Fig. 5 of the paper: an HTTP client written against as-std's
     file-descriptor API, the socket installed in fdtab. *)
  Libos_socket.reset_host ();
  let server_wfd, _ = fresh_wfd () in
  let client_wfd, _ = fresh_wfd () in
  Libos.load_module server_wfd ~clock:(Clock.create ()) "socket";
  let server_clock = Clock.create () in
  let listener =
    Result.get_ok (Libos_socket.smol_bind server_wfd ~clock:server_clock ~port:80)
  in
  let ip = Option.get (Libos_socket.wfd_ip server_wfd) in
  (* Client side runs through as-std like user code would. *)
  let thread = Wfd.spawn_function_thread client_wfd ~clock:(Clock.create ()) in
  let ctx = Asstd.make_ctx client_wfd thread Workflow.Rust in
  let fd = Asstd.tcp_connect_fd ctx ~ip ~port:80 in
  ignore (Result.get_ok (Libos_socket.smol_accept listener ~clock:server_clock));
  let request = "GET /hello HTTP/1.1\r\n\r\n" in
  let written = Asstd.write_fd ctx ~fd (Bytes.of_string request) in
  Alcotest.(check int) "request written" (String.length request) written;
  (* Server echoes a response over the same connection. *)
  (match Libos_fdtab.lookup client_wfd fd with
  | Some (Libos_fdtab.Socket { conn; _ }) ->
      let got = Netsim.Tcp.recv conn ~at_client:false (String.length request) in
      Alcotest.(check bytes) "server got the request" (Bytes.of_string request) got;
      Netsim.Tcp.send conn ~from_client:false (Bytes.of_string "HTTP/1.1 200 OK\r\n\r\nok")
  | _ -> Alcotest.fail "fd is not a socket");
  let reply = Asstd.read_fd ctx ~fd ~len:4096 in
  Alcotest.(check bool) "client read the response" true
    (Bytes.length reply > 0
    && String.length (Bytes.to_string reply) >= 8
    && String.sub (Bytes.to_string reply) 0 8 = "HTTP/1.1");
  Asstd.close_fd ctx ~fd;
  match Libos_fdtab.lookup client_wfd fd with
  | None -> ()
  | Some _ -> Alcotest.fail "fd must be closed"

(* --- mmap_file_backend --- *)

let test_mmap_file_backend () =
  let wfd, _ = fresh_wfd () in
  let clock = Clock.create () in
  Libos.load_module wfd ~clock "mmap_file_backend";
  let t = spawn wfd in
  (* Stage a file, mmap a region, bind them, then read through it. *)
  ignore
    (Result.get_ok
       (Libos_fatfs.fatfs_write wfd ~clock "/backing" (Bytes.make 8192 'F')));
  let addr = Result.get_ok (Libos_mm.mmap wfd ~clock ~thread:t ~len:8192) in
  Result.get_ok
    (Libos_mmap_backend.register_file_backend wfd ~clock ~region_addr:addr
       ~region_len:8192 ~path:"/backing");
  let c = Address_space.load_byte wfd.Wfd.aspace ~pkru:t.Wfd.pkru (addr + 5000) in
  Alcotest.(check char) "fault populated from file" 'F' c;
  Alcotest.(check int) "fault served" 1 (Libos_mmap_backend.faults_served wfd);
  (* Unregistered region: EINVAL. *)
  match
    Libos_mmap_backend.register_file_backend wfd ~clock ~region_addr:0xDEAD000
      ~region_len:4096 ~path:"/backing"
  with
  | Error Errno.Einval -> ()
  | Ok _ | Error _ -> Alcotest.fail "unmapped region must be EINVAL"

(* --- Shell recycling (Wfd.recycle / Wfd.acquire) --- *)

(* Recycling is a host-only optimisation: every virtual observable must
   be bit-identical to the historical clone-then-destroy path, at any
   domain count, and no shell may outlive its server. *)

let serve_recycling ?config ~recycle_cap ~requests () =
  let server = Visor.Server.create ?config ~recycle_cap () in
  List.iter
    (fun (endpoint, workflow, bindings) ->
      Visor.Server.register server ~endpoint ~workflow ~bindings ())
    Test_par.endpoints_spec;
  let r = Visor.Server.serve server requests in
  Visor.Server.shutdown server;
  r

let test_recycle_vs_fresh_differential () =
  (* Same stream served with the pool enabled (cap 64) and disabled
     (cap 0): responses, counters, trace and metrics exports must
     match byte for byte, across several arrival seeds. *)
  let observe ~recycle_cap ~requests =
    Trace.clear Trace.global;
    Span.clear Span.global;
    Metrics.reset ();
    Span.set_enabled Span.global true;
    let r = serve_recycling ~recycle_cap ~requests () in
    let tr = Obs.trace_json_string () in
    let me = Obs.metrics_json_string () in
    Span.set_enabled Span.global false;
    Trace.clear Trace.global;
    Span.clear Span.global;
    Metrics.reset ();
    (Test_par.fingerprint r ^ "|" ^ Test_par.summary r, tr, me)
  in
  List.iter
    (fun seed ->
      let requests = Test_par.requests_for ~seed ~count:40 in
      let fresh_fp, fresh_tr, fresh_me = observe ~recycle_cap:0 ~requests in
      let rec_fp, rec_tr, rec_me = observe ~recycle_cap:64 ~requests in
      Alcotest.(check string)
        (Printf.sprintf "responses identical (seed %d)" seed)
        fresh_fp rec_fp;
      Alcotest.(check string)
        (Printf.sprintf "trace identical (seed %d)" seed)
        fresh_tr rec_tr;
      Alcotest.(check string)
        (Printf.sprintf "metrics identical (seed %d)" seed)
        fresh_me rec_me)
    [ 3; 13; 23 ]

let test_recycle_no_leak_under_faults () =
  (* Crashing requests must not strand shells: a WFD that died
     mid-request is destroyed, not pooled, and shutdown drains the
     pool, so the live count returns to its pre-serve baseline. *)
  let live0 = Wfd.live_count () in
  let requests = Test_par.requests_for ~seed:17 ~count:40 in
  let plan = Fault.create ~seed:9 () in
  Fault.inject plan ~site:Fault.site_fn_crash (Fault.Every 5);
  let config =
    { Visor.default_config with Visor.fault = Some plan; retry = Visor.Retry_workflow 2 }
  in
  let r = serve_recycling ~config ~recycle_cap:64 ~requests () in
  Alcotest.(check int) "every request resolved" 40
    (r.Visor.Server.completed + r.Visor.Server.failed);
  Alcotest.(check bool) "faults actually fired" true
    (Fault.fired plan ~site:Fault.site_fn_crash > 0);
  Alcotest.(check int) "no shell leak after faulty serve" live0 (Wfd.live_count ())

let test_recycle_identical_across_domains () =
  (* Recycled shells reuse reserved WFD ids, so the id stream — and
     with it every response and trace byte — must not depend on which
     domain popped which shell. *)
  let requests = Test_par.requests_for ~seed:29 ~count:50 in
  let observe domains =
    Test_par.with_domains domains (fun () ->
        Trace.clear Trace.global;
        Metrics.reset ();
        let r = serve_recycling ~recycle_cap:64 ~requests () in
        let tr = Obs.trace_json_string () in
        Trace.clear Trace.global;
        Metrics.reset ();
        (Test_par.fingerprint r ^ "|" ^ Test_par.summary r, tr))
  in
  let live0 = Wfd.live_count () in
  let seq_fp, seq_tr = observe 1 in
  let par_fp, par_tr = observe 4 in
  Alcotest.(check string) "responses identical at 1 vs 4 domains" seq_fp par_fp;
  Alcotest.(check string) "trace identical at 1 vs 4 domains" seq_tr par_tr;
  Alcotest.(check int) "no shell leak across domain counts" live0 (Wfd.live_count ())

let suite =
  [
    Alcotest.test_case "wfd create maps system" `Quick test_wfd_create_maps_system;
    Alcotest.test_case "wfd spawn threads" `Quick test_wfd_spawn_threads;
    Alcotest.test_case "user cannot touch system" `Quick test_wfd_user_cannot_touch_system;
    Alcotest.test_case "user can touch own heap" `Quick test_wfd_user_can_touch_own_heap;
    Alcotest.test_case "shared mode cross-function" `Quick test_wfd_shared_mode_cross_function_access;
    Alcotest.test_case "IFI blocks cross-function" `Quick test_wfd_ifi_blocks_cross_function;
    Alcotest.test_case "wfd destroy" `Quick test_wfd_destroy;
    Alcotest.test_case "trampoline switches rights" `Quick test_trampoline_switches_rights;
    Alcotest.test_case "trampoline not reentrant" `Quick test_trampoline_not_reentrant;
    Alcotest.test_case "trampoline restores on exception" `Quick test_trampoline_restores_on_exception;
    Alcotest.test_case "trampoline charges time" `Quick test_trampoline_charges_time;
    Alcotest.test_case "entry miss then fast path" `Quick test_entry_miss_then_fast_path;
    Alcotest.test_case "module dependencies" `Quick test_module_dependencies_load_first;
    Alcotest.test_case "load idempotent" `Quick test_load_idempotent;
    Alcotest.test_case "load all" `Quick test_load_all;
    Alcotest.test_case "entry table per WFD" `Quick test_entry_table_is_per_wfd;
    Alcotest.test_case "unknown entry" `Quick test_providing_unknown_entry;
    Alcotest.test_case "mm alloc/acquire" `Quick test_mm_alloc_acquire;
    Alcotest.test_case "mm fingerprint mismatch" `Quick test_mm_fingerprint_mismatch;
    Alcotest.test_case "mm duplicate slot" `Quick test_mm_duplicate_slot;
    Alcotest.test_case "mm free unmaps" `Quick test_mm_free_unmaps;
    Alcotest.test_case "mm slot listing" `Quick test_mm_slot_listing;
    Alcotest.test_case "mm mmap" `Quick test_mm_mmap;
    Alcotest.test_case "fdtab file io" `Quick test_fdtab_file_io;
    Alcotest.test_case "fdtab errors" `Quick test_fdtab_errors;
    Alcotest.test_case "fdtab stdout" `Quick test_fdtab_stdout;
    Alcotest.test_case "fatfs charges clock" `Quick test_fatfs_module_charges_clock;
    Alcotest.test_case "time module" `Quick test_time_module;
    Alcotest.test_case "socket module" `Quick test_socket_module;
    Alcotest.test_case "socket connect nowhere" `Quick test_socket_connect_nowhere;
    Alcotest.test_case "http server between WFDs" `Quick test_http_server_between_wfds;
    Alcotest.test_case "Fig.5 http client over fd" `Quick test_fig5_http_client_over_fd;
    Alcotest.test_case "mmap file backend" `Quick test_mmap_file_backend;
    Alcotest.test_case "recycle vs fresh differential" `Quick
      test_recycle_vs_fresh_differential;
    Alcotest.test_case "recycle no leak under faults" `Quick
      test_recycle_no_leak_under_faults;
    Alcotest.test_case "recycle identical across domains" `Quick
      test_recycle_identical_across_domains;
  ]
