lib/core/workflow.mli: Format Jsonlite
