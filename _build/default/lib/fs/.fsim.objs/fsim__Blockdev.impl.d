lib/fs/blockdev.ml: Bytes Hashtbl Printf Stdlib
