type t =
  | Unit
  | Int of int64
  | Str of string
  | Raw of bytes
  | Pair of t * t
  | List of t list
  | Record of (string * t) list

(* Structural hash over shape only: constructor tags and field names.
   Lists hash the shape of their first element (homogeneous by
   convention), so [List []] and [List [Int _]] differ, but two
   non-empty int lists agree. *)
let rec fingerprint = function
  | Unit -> 0x11L
  | Int _ -> 0x22L
  | Str _ -> 0x33L
  | Raw _ -> 0x44L
  | Pair (a, b) ->
      Int64.add 0x55L (Int64.add (Int64.mul (fingerprint a) 31L) (fingerprint b))
  | List [] -> 0x66L
  | List (x :: _) -> Int64.add 0x77L (Int64.mul (fingerprint x) 131L)
  | Record fields ->
      List.fold_left
        (fun acc (name, v) ->
          let h = Int64.of_int (Hashtbl.hash name) in
          Int64.add (Int64.mul acc 1000003L) (Int64.add h (fingerprint v)))
        0x88L fields

let buf_add_int64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Buffer.add_bytes buf b

let buf_add_len buf n = buf_add_int64 buf (Int64.of_int n)

let rec encode_into buf = function
  | Unit -> Buffer.add_char buf '\000'
  | Int v ->
      Buffer.add_char buf '\001';
      buf_add_int64 buf v
  | Str s ->
      Buffer.add_char buf '\002';
      buf_add_len buf (String.length s);
      Buffer.add_string buf s
  | Raw b ->
      Buffer.add_char buf '\003';
      buf_add_len buf (Bytes.length b);
      Buffer.add_bytes buf b
  | Pair (a, b) ->
      Buffer.add_char buf '\004';
      encode_into buf a;
      encode_into buf b
  | List items ->
      Buffer.add_char buf '\005';
      buf_add_len buf (List.length items);
      List.iter (encode_into buf) items
  | Record fields ->
      Buffer.add_char buf '\006';
      buf_add_len buf (List.length fields);
      List.iter
        (fun (name, v) ->
          buf_add_len buf (String.length name);
          Buffer.add_string buf name;
          encode_into buf v)
        fields

let encode v =
  let buf = Buffer.create 64 in
  encode_into buf v;
  Buffer.to_bytes buf

type cursor = { data : bytes; mutable off : int }

let bad fmt = Format.kasprintf invalid_arg fmt

let read_byte c =
  if c.off >= Bytes.length c.data then bad "Fndata.decode: truncated";
  let b = Bytes.get c.data c.off in
  c.off <- c.off + 1;
  b

let read_int64 c =
  if c.off + 8 > Bytes.length c.data then bad "Fndata.decode: truncated int64";
  let v = Bytes.get_int64_le c.data c.off in
  c.off <- c.off + 8;
  v

let read_len c =
  let v = Int64.to_int (read_int64 c) in
  if v < 0 || c.off + v > Bytes.length c.data then bad "Fndata.decode: bad length %d" v;
  v

let read_bytes c n =
  let b = Bytes.sub c.data c.off n in
  c.off <- c.off + n;
  b

let rec decode_value c =
  match Char.code (read_byte c) with
  | 0 -> Unit
  | 1 -> Int (read_int64 c)
  | 2 ->
      let n = read_len c in
      Str (Bytes.to_string (read_bytes c n))
  | 3 ->
      let n = read_len c in
      Raw (read_bytes c n)
  | 4 ->
      let a = decode_value c in
      let b = decode_value c in
      Pair (a, b)
  | 5 ->
      let n = Int64.to_int (read_int64 c) in
      if n < 0 then bad "Fndata.decode: negative list length";
      List (List.init n (fun _ -> decode_value c))
  | 6 ->
      let n = Int64.to_int (read_int64 c) in
      if n < 0 then bad "Fndata.decode: negative record length";
      Record
        (List.init n (fun _ ->
             let k = read_len c in
             let name = Bytes.to_string (read_bytes c k) in
             (name, decode_value c)))
  | tag -> bad "Fndata.decode: unknown tag %d" tag

let decode data =
  let c = { data; off = 0 } in
  let v = decode_value c in
  if c.off <> Bytes.length data then bad "Fndata.decode: trailing bytes";
  v

let encoded_size v = Bytes.length (encode v)

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Int x, Int y -> Int64.equal x y
  | Str x, Str y -> String.equal x y
  | Raw x, Raw y -> Bytes.equal x y
  | Pair (a1, a2), Pair (b1, b2) -> equal a1 b1 && equal a2 b2
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Record xs, Record ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
           xs ys
  | (Unit | Int _ | Str _ | Raw _ | Pair _ | List _ | Record _), _ -> false

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Int v -> Format.fprintf fmt "%Ld" v
  | Str s -> Format.fprintf fmt "%S" s
  | Raw b -> Format.fprintf fmt "<raw %d bytes>" (Bytes.length b)
  | Pair (a, b) -> Format.fprintf fmt "(%a, %a)" pp a pp b
  | List items ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp)
        items
  | Record fields ->
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.fprintf f "; ")
           (fun f (k, v) -> Format.fprintf f "%s = %a" k pp v))
        fields

let record_get v name =
  match v with
  | Record fields -> begin
      match List.assoc_opt name fields with
      | Some x -> x
      | None -> raise Not_found
    end
  | _ -> invalid_arg "Fndata.record_get: not a record"
