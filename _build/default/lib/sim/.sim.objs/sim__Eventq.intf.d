lib/sim/eventq.mli: Units
