open Sim

let profile =
  {
    Sandbox.name = "gVisor";
    stages =
      [
        { Sandbox.label = "OCI create (runsc)"; cost = Units.ms 74 };
        { label = "Go runtime start"; cost = Units.ms 52 };
        { label = "sentry init (ptrace)"; cost = Units.ms 196 };
        { label = "gofer mounts"; cost = Units.ms 83 };
        { label = "app spawn + runtime"; cost = Units.ms 43 };
      ];
    mem_overhead = 64 * 1024 * 1024;
    cpu_tax = 0.09;
    syscall_via = Hostos.Syscall.Ptrace;
  }
