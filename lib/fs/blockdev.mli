(** Sector-addressed virtual block device backing the filesystem
    implementations.  Mechanically exact storage; timing is charged by
    the filesystem layer, which knows its own access pattern. *)

val sector_size : int
(** 512 bytes. *)

type t

val create : sectors:int -> t
val sectors : t -> int
val size_bytes : t -> int

val reset : t -> unit
(** Restore the all-zero image of a fresh [create] with the same
    geometry (sector counters included), reusing the sparse store's
    arena.  Indistinguishable from a new device. *)

val read_sector : t -> int -> bytes
(** Fresh copy of one sector.  Raises [Invalid_argument] out of range. *)

val write_sector : t -> int -> bytes -> unit
(** [bytes] may be shorter than a sector; the rest is untouched. *)

val read_range : t -> sector:int -> count:int -> bytes
val write_range : t -> sector:int -> bytes -> unit

val reads : t -> int
val writes : t -> int
(** Sector-op counters for tests. *)
