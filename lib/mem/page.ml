let size = 4096
let shift = 12

type perm = { read : bool; write : bool; exec : bool }

let rw = { read = true; write = true; exec = false }
let ro = { read = true; write = false; exec = false }
let rx = { read = true; write = false; exec = true }
let rwx = { read = true; write = true; exec = true }

let pp_perm fmt p =
  Format.fprintf fmt "%c%c%c"
    (if p.read then 'r' else '-')
    (if p.write then 'w' else '-')
    (if p.exec then 'x' else '-')

(* Backing storage is demand-zero: a freshly mapped page costs nothing
   until first touched, like anonymous mmap on a host kernel.  This
   keeps large mostly-untouched mappings (WFD system partitions,
   function heaps) cheap to create in host time and memory. *)
type t = {
  mutable store : Bytes.t option;  (** Materialised on first access. *)
  mutable perm : perm;
  mutable pkey : Prot.key;
  mutable populated : bool;
}

let create ?(perm = rw) ?(pkey = Prot.default_key) () =
  { store = None; perm; pkey; populated = false }

let data t =
  match t.store with
  | Some b -> b
  | None ->
      let b = Bytes.make size '\000' in
      t.store <- Some b;
      b

let vpn_of_addr addr = addr lsr shift
let offset_of_addr addr = addr land (size - 1)
let addr_of_vpn vpn = vpn lsl shift

let align_up addr = (addr + size - 1) land lnot (size - 1)
let align_down addr = addr land lnot (size - 1)

let count_for len = if len <= 0 then 0 else (len + size - 1) / size
