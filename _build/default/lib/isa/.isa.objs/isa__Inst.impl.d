lib/isa/inst.ml: Char Format Hashtbl Int32 List String
