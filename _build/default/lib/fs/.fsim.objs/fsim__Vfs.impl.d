lib/fs/vfs.ml: Blockdev Extfs Fat Ramfs Sim
