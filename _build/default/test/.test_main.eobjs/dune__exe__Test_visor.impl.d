test/test_visor.ml: Alcotest Alloystack_core Asbuffer Asstd Bytes Fun Gateway Isa Jsonlite List Netsim Printf Sim Units Visor Wfd Workflow
