lib/baselines/platform.ml: Fctx Int64 List Printf Sim Workloads
