(** as-libos [time] module: the host's Unix timestamp (Table 2). *)

val init : Wfd.t -> clock:Sim.Clock.t -> unit

val gettimeofday : Wfd.t -> clock:Sim.Clock.t -> int64
(** Nanoseconds of virtual time on the calling thread's clock, offset
    by the simulation epoch. *)

val epoch_ns : int64
(** The virtual epoch: 2025-03-30T00:00:00Z (EuroSys '25), in ns. *)
