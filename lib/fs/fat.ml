open Sim

let cluster_size = 4096
let sectors_per_cluster = cluster_size / Blockdev.sector_size

(* FAT entry values. *)
let free_mark = -1
let end_of_chain = -2

type dirent = { mutable first : int; mutable size : int }

(* The allocation table is sparse: only allocated clusters have an
   entry; an absent cluster reads as [free_mark].  A dense array would
   cost O(disk size) per [format] — 4 MB for the default 2 GiB device —
   which dominates host time when the serving path formats a fresh
   scratch disk per request.  Sparse storage keeps [format] O(1) and
   memory proportional to live data, matching {!Blockdev}. *)
type t = {
  dev : Blockdev.t;
  fat : (int, int) Hashtbl.t;
      (** cluster -> next cluster or [end_of_chain]; absent = free. *)
  nclusters : int;
  mutable used : int;  (** Number of allocated clusters. *)
  dir : (string, dirent) Hashtbl.t;
  dirs : (string, unit) Hashtbl.t;  (** Created directories, normalised. *)
  mutable next_free_hint : int;
}

let entry t c = match Hashtbl.find_opt t.fat c with Some v -> v | None -> free_mark

(* Calibration (Table 4): read 362 MB/s -> 11.31us per 4KiB cluster,
   decomposed as 8.75us chain/dirent walk + copy at 1.6 GB/s (2.56us).
   Write 1562 MB/s -> 2.62us per cluster: 1.0us allocation + copy at
   2.53 GB/s (1.62us). *)
let read_walk_overhead = Units.ns 8750
let read_copy_bw = 1.6e9
let write_alloc_overhead = Units.ns 1000
let write_copy_bw = 2.53e9

let charge clock cost = match clock with Some c -> Clock.advance c cost | None -> ()

let format dev =
  let clusters = Blockdev.size_bytes dev / cluster_size in
  let dirs = Hashtbl.create 8 in
  Hashtbl.replace dirs "/" ();
  {
    dev;
    fat = Hashtbl.create 64;
    nclusters = clusters;
    used = 0;
    dir = Hashtbl.create 64;
    dirs;
    next_free_hint = 0;
  }

(* Re-[format] in place: same result as [format (Blockdev.create ...)]
   of the same geometry, but reusing the filesystem's and device's
   arenas.  The serving recycling path resets per-request scratch disks
   this way instead of allocating ~100k of them. *)
let reset t =
  Blockdev.reset t.dev;
  Hashtbl.reset t.fat;
  t.used <- 0;
  Hashtbl.reset t.dir;
  Hashtbl.reset t.dirs;
  Hashtbl.replace t.dirs "/" ();
  t.next_free_hint <- 0

let free_clusters t = t.nclusters - t.used

let alloc_cluster t =
  let n = t.nclusters in
  let rec scan i tries =
    if tries = n then failwith "Fat: device full"
    else if not (Hashtbl.mem t.fat i) then begin
      t.next_free_hint <- (i + 1) mod n;
      i
    end
    else scan ((i + 1) mod n) (tries + 1)
  in
  let c = scan t.next_free_hint 0 in
  Hashtbl.replace t.fat c end_of_chain;
  t.used <- t.used + 1;
  c

let chain_of t first =
  let rec go c acc =
    if c = end_of_chain then List.rev acc
    else if c < 0 || c >= t.nclusters then failwith "Fat: corrupt chain"
    else go (entry t c) (c :: acc)
  in
  if first = end_of_chain then [] else go first []

let free_chain t first =
  List.iter
    (fun c ->
      if Hashtbl.mem t.fat c then begin
        Hashtbl.remove t.fat c;
        t.used <- t.used - 1
      end)
    (chain_of t first)

let cluster_sector c = c * sectors_per_cluster

let write_cluster t c data off len =
  let buf = Bytes.make cluster_size '\000' in
  Bytes.blit data off buf 0 len;
  Blockdev.write_range t.dev ~sector:(cluster_sector c) buf

let read_cluster t c = Blockdev.read_range t.dev ~sector:(cluster_sector c) ~count:sectors_per_cluster

let create_file t path =
  if Hashtbl.mem t.dir path then
    invalid_arg (Printf.sprintf "Fat.create_file: %s exists" path);
  Hashtbl.replace t.dir path { first = end_of_chain; size = 0 }

let find t path =
  match Hashtbl.find_opt t.dir path with
  | Some d -> d
  | None -> raise Not_found

let store_clusters t dirent data =
  let len = Bytes.length data in
  let nclusters = (len + cluster_size - 1) / cluster_size in
  let prev = ref free_mark in
  for i = 0 to nclusters - 1 do
    let c = alloc_cluster t in
    if !prev = free_mark then dirent.first <- c else Hashtbl.replace t.fat !prev c;
    let off = i * cluster_size in
    write_cluster t c data off (Stdlib.min cluster_size (len - off));
    prev := c
  done;
  if nclusters = 0 then dirent.first <- end_of_chain;
  dirent.size <- len

let write_cost len =
  let nclusters = (len + cluster_size - 1) / cluster_size in
  Units.add
    (Units.scale write_alloc_overhead (float_of_int nclusters))
    (Units.time_for_bytes ~bytes_per_sec:write_copy_bw len)

let read_cost len =
  let nclusters = (len + cluster_size - 1) / cluster_size in
  Units.add
    (Units.scale read_walk_overhead (float_of_int nclusters))
    (Units.time_for_bytes ~bytes_per_sec:read_copy_bw len)

let write_file t ?clock path data =
  (match Hashtbl.find_opt t.dir path with
  | Some d ->
      free_chain t d.first;
      d.first <- end_of_chain;
      d.size <- 0
  | None -> create_file t path);
  let d = find t path in
  store_clusters t d data;
  charge clock (write_cost (Bytes.length data))

let append_file t ?clock path data =
  match Hashtbl.find_opt t.dir path with
  | None -> write_file t ?clock path data
  | Some d ->
      (* Rewrite the file: read existing (charged as a read), concat,
         store.  FAT appends into a partially-filled tail cluster would
         need read-modify-write anyway. *)
      let chain = chain_of t d.first in
      let old = Buffer.create d.size in
      List.iter (fun c -> Buffer.add_bytes old (read_cluster t c)) chain;
      let old_data = Bytes.sub (Buffer.to_bytes old) 0 d.size in
      charge clock (read_cost d.size);
      free_chain t d.first;
      d.first <- end_of_chain;
      let combined = Bytes.cat old_data data in
      store_clusters t d combined;
      charge clock (write_cost (Bytes.length data))

let read_file t ?clock path =
  let d = find t path in
  let chain = chain_of t d.first in
  let buf = Buffer.create d.size in
  List.iter (fun c -> Buffer.add_bytes buf (read_cluster t c)) chain;
  charge clock (read_cost d.size);
  Bytes.sub (Buffer.to_bytes buf) 0 d.size

let file_size t path = (find t path).size

let exists t path = Hashtbl.mem t.dir path

let delete t path =
  let d = find t path in
  free_chain t d.first;
  Hashtbl.remove t.dir path

let list_files t = Hashtbl.fold (fun k _ acc -> k :: acc) t.dir [] |> List.sort compare

let chain_length t path = List.length (chain_of t (find t path).first)


(* --- directories --- *)

let normalise path =
  if path = "" || path = "/" then "/"
  else if path.[String.length path - 1] = '/' then
    String.sub path 0 (String.length path - 1)
  else path

let parent path =
  match String.rindex_opt (normalise path) '/' with
  | None | Some 0 -> "/"
  | Some i -> String.sub path 0 i

let is_dir t path = Hashtbl.mem t.dirs (normalise path)

let mkdir t path =
  let path = normalise path in
  if Hashtbl.mem t.dirs path || Hashtbl.mem t.dir path then
    invalid_arg (Printf.sprintf "Fat.mkdir: %s exists" path);
  if not (Hashtbl.mem t.dirs (parent path)) then raise Not_found;
  Hashtbl.replace t.dirs path ()

let direct_child dir path =
  (* Is [path] a direct child of [dir]?  Returns the child name. *)
  let prefix = if dir = "/" then "/" else dir ^ "/" in
  let n = String.length prefix in
  if String.length path > n && String.sub path 0 n = prefix then begin
    let rest = String.sub path n (String.length path - n) in
    if String.contains rest '/' then None else Some rest
  end
  else None

let list_dir t path =
  let path = normalise path in
  if not (Hashtbl.mem t.dirs path) then raise Not_found;
  let files =
    Hashtbl.fold
      (fun p _ acc -> match direct_child path p with Some c -> c :: acc | None -> acc)
      t.dir []
  in
  let subdirs =
    Hashtbl.fold
      (fun p () acc -> match direct_child path p with Some c -> c :: acc | None -> acc)
      t.dirs []
  in
  List.sort compare (files @ subdirs)

let rmdir t path =
  let path = normalise path in
  if path = "/" then invalid_arg "Fat.rmdir: cannot remove the root";
  if not (Hashtbl.mem t.dirs path) then raise Not_found;
  if list_dir t path <> [] then
    invalid_arg (Printf.sprintf "Fat.rmdir: %s is not empty" path);
  Hashtbl.remove t.dirs path
