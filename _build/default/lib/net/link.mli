(** Point-to-point transmission medium between two endpoints. *)

type t = {
  bandwidth : float;  (** bytes/s sustained. *)
  latency : Sim.Units.time;  (** One-way propagation delay. *)
  per_packet : Sim.Units.time;  (** Fixed cost per packet on the wire. *)
}

val loopback : t
(** Same-host loopback: memory-bandwidth bound, sub-µs latency. *)

val inter_vm : t
(** Between two MicroVMs on one host: virtio-net + vswitch hop. *)

val datacenter : t
(** Cross-machine 25GbE with ~50µs RTT (for the Redis/S3 data plane). *)

val wire_time : t -> int -> Sim.Units.time
(** Serialisation time of a payload at the link bandwidth. *)

val rtt : t -> Sim.Units.time
