open Sim

type placement = { core : int; start : Units.time; finish : Units.time }

type pool = { free_at : Units.time array }

let pool ~cores =
  if cores <= 0 then invalid_arg "Sched.pool: cores must be positive";
  { free_at = Array.make cores Units.zero }

let pool_cores pool = Array.length pool.free_at

let copy_pool pool = { free_at = Array.copy pool.free_at }

let restore_pool dst src =
  if Array.length dst.free_at <> Array.length src.free_at then
    invalid_arg "Sched.restore_pool: core counts differ";
  Array.blit src.free_at 0 dst.free_at 0 (Array.length dst.free_at)

let busy_until pool = Array.fold_left Units.max Units.zero pool.free_at

let schedule_on pool ?(ready = Units.zero) ?(dispatch_latency = Units.zero) durations =
  let cores = Array.length pool.free_at in
  let dispatch_clock = ref ready in
  let place d =
    (* The orchestrator dispatches tasks one after another. *)
    dispatch_clock := Units.add !dispatch_clock dispatch_latency;
    let core = ref 0 in
    for c = 1 to cores - 1 do
      if Units.( < ) pool.free_at.(c) pool.free_at.(!core) then core := c
    done;
    let start = Units.max pool.free_at.(!core) !dispatch_clock in
    let start = Units.max start ready in
    let finish = Units.add start d in
    pool.free_at.(!core) <- finish;
    { core = !core; start; finish }
  in
  List.map place durations

let schedule ~cores ?(ready = Units.zero) ?(dispatch_latency = Units.zero) durations =
  if cores <= 0 then invalid_arg "Sched.schedule: cores must be positive";
  let p = { free_at = Array.make cores ready } in
  schedule_on p ~ready ~dispatch_latency durations

let makespan placements =
  List.fold_left (fun acc p -> Units.max acc p.finish) Units.zero placements

let fan_in_wait placements =
  let m = makespan placements in
  List.map (fun p -> Units.sub m p.finish) placements

let same_core_pairs placements =
  (* Pair tasks that run back to back on the same core, in that core's
     execution order — which need not be list order once tasks skip
     over busy cores. *)
  let arr = Array.of_list placements in
  let by_core = Hashtbl.create 8 in
  Array.iteri
    (fun i p ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_core p.core) in
      Hashtbl.replace by_core p.core (i :: prev))
    arr;
  let pairs = ref [] in
  Hashtbl.iter
    (fun _core idxs ->
      let ordered =
        List.sort
          (fun a b ->
            let c = Units.compare arr.(a).start arr.(b).start in
            if c <> 0 then c else Stdlib.compare a b)
          (List.rev idxs)
      in
      let rec consecutive = function
        | a :: (b :: _ as rest) ->
            pairs := (a, b) :: !pairs;
            consecutive rest
        | [ _ ] | [] -> ()
      in
      consecutive ordered)
    by_core;
  List.sort compare !pairs
