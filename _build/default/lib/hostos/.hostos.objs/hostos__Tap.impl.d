lib/hostos/tap.ml: Printf Sim Stdlib
