(** ERIM-style binary rewriting.

    Removes *accidental* occurrences of forbidden opcodes from an image:

    - if a forbidden byte pattern straddles two instructions, a [nop] is
      inserted between them so the bytes no longer combine;
    - if the pattern lies inside a [mov] immediate, the instruction is
      replaced by a register-variant sequence that builds the same value
      without embedding the bytes.

    Intentional forbidden instructions cannot be rewritten — the image
    must be rejected (per the paper's threat model). *)

exception Unrewritable of Image.t
(** Raised when the image contains aligned forbidden instructions. *)

val rewrite : Image.t -> Image.t
(** Image whose {!Scanner.verdict} is [Clean].  Raises {!Unrewritable}
    for images with intentional forbidden instructions.  Idempotent on
    clean images. *)

val admit : Image.t -> (Image.t, string) result
(** Full admission pipeline used before workflow start: scan, rewrite if
    needed, re-scan.  Returns the admitted image or a reason for
    rejection. *)
