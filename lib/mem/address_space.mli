(** A simulated virtual address space: page table + MPK enforcement.

    Each WFD (workflow domain) owns one address space.  All data accesses
    are performed with an explicit PKRU value — the rights of the thread
    doing the access — and raise {!Fault} when forbidden, exactly as the
    hardware would deliver SIGSEGV with a pkey error code. *)

type fault_kind =
  | Unmapped  (** No page mapped at the address. *)
  | Perm_denied of Prot.access  (** Page permission bits forbid it. *)
  | Pkey_denied of Prot.access * Prot.key
      (** PKRU forbids access to this page's key. *)

exception Fault of { addr : int; kind : fault_kind }

val pp_fault_kind : Format.formatter -> fault_kind -> unit

type t

val create : ?tlb:bool -> unit -> t
(** [create ()] makes an empty address space.  Mapped ranges are
    tracked as regions and page records materialise lazily on first
    touch, so mapping a large range is O(1) in host time.  [tlb]
    (default [true]) enables the software TLB: a direct-mapped
    translation cache validated by a generation counter (bumped on
    {!map}/{!unmap}/{!mprotect}/{!pkey_mprotect}) that lets repeated
    accesses skip the page walk and permission/PKRU re-check.  The TLB
    is a host-time optimisation only: fault behaviour, access counts
    and demand-paging semantics are identical with it off. *)

val recycle : t -> unit
(** Rewind to the freshly-created empty state in place, reusing the
    page-table and TLB storage: all mappings, materialised pages, the
    fault handler and every per-space counter are dropped, and every
    TLB entry is scrubbed.  Counter-silent — global [mem.tlb.*]
    counters behave exactly as if the space had been destroyed and a
    new one created — so WFD recycling stays indistinguishable from
    clone-then-destroy. *)

(** {1 Mapping} *)

val map :
  t -> addr:int -> len:int -> ?perm:Page.perm -> ?pkey:Prot.key -> unit -> unit
(** Map zeroed pages over [addr, addr+len) (page aligned; [addr] must be
    page aligned).  Raises [Invalid_argument] if any page in the range is
    already mapped. *)

val unmap : t -> addr:int -> len:int -> unit
(** Unmap every mapped page in the range; unmapped holes are ignored. *)

val is_mapped : t -> int -> bool
val page_count : t -> int
val mapped_bytes : t -> int

val pkey_mprotect : t -> addr:int -> len:int -> Prot.key -> unit
(** Re-tag every page in the (fully mapped) range with a key — the
    simulation of the [pkey_mprotect] syscall.  Raises {!Fault} with
    [Unmapped] if part of the range is not mapped. *)

val mprotect : t -> addr:int -> len:int -> Page.perm -> unit

val key_of : t -> int -> Prot.key
(** Key of the page containing an address.  Raises {!Fault}. *)

(** {1 Data access}

    All of these enforce page permissions and PKRU. *)

val load_byte : t -> pkru:Prot.pkru -> int -> char
val store_byte : t -> pkru:Prot.pkru -> int -> char -> unit

val load_bytes : t -> pkru:Prot.pkru -> int -> int -> bytes
(** [load_bytes t ~pkru addr len]. *)

val store_bytes : t -> pkru:Prot.pkru -> int -> bytes -> unit

val touch_bytes : t -> pkru:Prot.pkru -> int -> int -> unit
(** [touch_bytes t ~pkru addr len] performs the same permission-checked
    page walk as {!load_bytes} — identical access and TLB accounting —
    without materialising a copy of the range. *)

val load_int64 : t -> pkru:Prot.pkru -> int -> int64
val store_int64 : t -> pkru:Prot.pkru -> int -> int64 -> unit

val blit :
  t -> pkru:Prot.pkru -> src:int -> dst:int -> len:int -> unit
(** Copy within the address space, checking read rights on the source
    range and write rights on the destination range.  Disjoint ranges
    copy page-chunk to page-chunk with no intermediate buffer; ranges
    that overlap fall back to a buffered copy (memmove semantics).  On
    the direct path a fault part-way through the copy leaves earlier
    chunks already written, as on real hardware. *)

val fill : t -> pkru:Prot.pkru -> addr:int -> len:int -> char -> unit

(** {1 Fetch} *)

val check_exec : t -> pkru:Prot.pkru -> int -> unit
(** Raises {!Fault} unless the page at the address is executable. *)

(** {1 Demand paging hooks} *)

val set_fault_handler : t -> (int -> unit) option -> unit
(** When set, the handler runs the first time a mapped-but-unpopulated
    page is touched (userfaultfd model); it may fill the page through
    {!populate_page}. *)

val populate_page : t -> vpn:int -> bytes -> unit
(** Copy up to a page of backing data into the page and mark it
    populated.  Used by fault handlers. *)

val touched_fault_count : t -> int
(** Number of demand-paging faults served so far. *)

(** {1 Accounting} *)

val access_count : t -> int
(** Total load/store operations performed (for tests and traces). *)

(** {1 TLB observability}

    Per-address-space counters; process-wide totals are also kept in
    the [Sim.Stats] counters ["mem.tlb.hit"], ["mem.tlb.miss"] and
    ["mem.tlb.flush"].  To keep the hit path allocation- and
    bookkeeping-free, hits are derived ([access_count] minus misses —
    every successful access in a TLB-enabled space is exactly one of
    the two) rather than counted per access; the global ["mem.tlb.hit"]
    counter is brought up to date on every TLB flush and on every
    {!tlb_hit_count} read. *)

val tlb_hit_count : t -> int
val tlb_miss_count : t -> int

val tlb_flush_count : t -> int
(** Number of generation bumps (whole-TLB invalidations). *)
