(** Deterministic fault injection (§3.1 chaos harness).

    A {e plan} is a seeded schedule of faults that components consult at
    named {e injection sites} ([Fault.check plan ~site:"net.link.tx"]).
    Each site draws from its own RNG stream derived from the plan seed
    and the site name, so the schedule at one site never depends on how
    often other sites are checked: the same seed always yields the same
    fault schedule, making every chaos run bit-for-bit reproducible.

    Every fired injection and every recovery action is recorded through
    {!Trace} under the ["fault"] category.

    Standard sites wired through the substrate:
    - {!site_link_tx} / {!site_link_delay} / {!site_link_corrupt}:
      packet drop / extra delay / corruption per TCP burst.
    - {!site_vfs_read} / {!site_vfs_write}: transient I/O errors in the
      virtual filesystem.
    - {!site_mem_alloc}: allocation failure in the buffer heap.
    - {!site_loader_load}: transient dlmopen failure in the on-demand
      module loader.
    - {!site_fn_crash} / {!site_fn_hang}: kernel crash / hang of a
      visor function thread. *)

type trigger =
  | Always  (** Fire on every occurrence. *)
  | Probability of float  (** Fire independently with probability [p] in [0, 1]. *)
  | Nth of int  (** Fire exactly on the nth occurrence (1-based), once. *)
  | First of int  (** Fire on the first n occurrences. *)
  | Every of int  (** Fire on every nth occurrence. *)

exception Injected of { site : string }
(** Raised by components that surface a fired injection as a crash. *)

type t
(** A mutable fault plan: rules plus per-site occurrence counters. *)

val create : ?trace:Trace.t -> seed:int -> unit -> t
(** A fresh plan with no rules.  Fired injections are recorded to
    [trace] when tracing is enabled; when omitted they go to
    {!Trace.current} resolved at record time ({!Trace.global} on the
    main domain), so a plan used inside a parallel task traces into
    that task's shard. *)

val seed : t -> int

val child : t -> index:int -> t
(** Per-task plan split deterministically off the parent: same rules,
    fresh counters, site streams re-derived from a seed mixed from
    [(seed t, index)] alone — so task [index] draws the same fault
    schedule whatever the host interleaving.  Records to
    {!Trace.current}. *)

val acquire_child : t -> index:int -> t
(** Exactly {!child}, but backed by a process-wide pool of recycled
    child plans: the rule table and per-site RNG cells of a released
    plan are re-fitted in place (counters zeroed, streams reseeded
    from the derived child seed), so the steady-state cost is zero
    allocation.  Behaviour — every draw, count and record — is
    indistinguishable from {!child}. *)

val release_child : t -> unit
(** Return a child plan to the pool once it has been {!absorb}ed (or
    deliberately discarded).  The pool takes ownership: the caller
    must not touch the plan afterwards.  Scrubbing happens on the next
    {!acquire_child}, so a crashed request's counters never leak. *)

val absorb : t -> t -> unit
(** [absorb parent c] folds a finished child's occurrence and fire
    counts back into [parent] (sites visited in sorted order), so
    plan-level accounting covers the whole run. *)

val inject : t -> site:string -> ?max_fires:int -> trigger -> unit
(** Install (or replace) the rule for [site].  [max_fires] caps the
    total number of injections at the site.  Raises [Invalid_argument]
    on a probability outside [0, 1] or a non-positive count. *)

val check : ?at:Units.time -> t -> site:string -> bool
(** [check t ~at ~site] is the injection-point probe: counts one
    occurrence of [site] and reports whether the fault fires.  Sites
    with no rule never fire and keep no state.  [at] is the virtual
    time recorded with the trace event (default {!Units.zero}). *)

val fire_exn : ?at:Units.time -> t -> site:string -> unit
(** Like {!check} but raises {!Injected} when the fault fires. *)

val occurrences : t -> site:string -> int
(** Times {!check} has been called for an injected site. *)

val fired : t -> site:string -> int
(** Times the site's fault has fired. *)

val total_fired : t -> int

val sites : t -> string list
(** Injected sites, sorted. *)

val schedule : t -> (string * int) list
(** [(site, fired)] for every injected site, sorted — the digest two
    same-seed runs must agree on. *)

val record_recovery : t -> at:Units.time -> site:string -> string -> unit
(** Record a recovery action (retry, restart, retransmit) taken in
    response to an injected fault, under the ["fault"] category. *)

val reset : t -> unit
(** Clear every site's occurrence counters and re-derive its RNG stream
    from the seed, so the plan replays the identical schedule. *)

(** {1 Standard site names} *)

val site_link_tx : string
val site_link_delay : string
val site_link_corrupt : string
val site_vfs_read : string
val site_vfs_write : string
val site_mem_alloc : string
val site_loader_load : string
val site_fn_crash : string
val site_fn_hang : string
