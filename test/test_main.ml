(* Top-level alcotest runner aggregating every suite. *)

let () =
  Alcotest.run "alloystack"
    [
      ("sim", Test_sim.suite);
      ("mem", Test_mem.suite);
      ("cache", Test_cache.suite);
      ("isa", Test_isa.suite);
      ("hostos", Test_hostos.suite);
      ("net", Test_net.suite);
      ("fs", Test_fs.suite);
      ("wasm", Test_wasm.suite);
      ("vmm", Test_vmm.suite);
      ("core", Test_core.suite);
      ("wfd", Test_wfd.suite);
      ("asbuffer", Test_asbuffer.suite);
      ("visor", Test_visor.suite);
      ("server", Test_server.suite);
      ("workloads", Test_workloads.suite);
      ("platforms", Test_platforms.suite);
      ("resilience", Test_resilience.suite);
      ("fault", Test_fault.suite);
      ("multilang", Test_multilang.suite);
      ("obs", Test_obs.suite);
      ("timeseries", Test_timeseries.suite);
      ("par", Test_par.suite);
      ("eventq", Test_eventq.suite);
      ("loadgen", Test_loadgen.suite);
      ("sampling", Test_sampling.suite);
      ("scale", Test_scale.suite);
      ("sketch", Test_sketch.suite);
    ]
