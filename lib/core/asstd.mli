(** as-std: the standard library layer user functions link against
    (§3.5).

    Every API below (1) checks the WFD entry table and triggers the
    on-demand loader on a miss, (2) crosses the MPK trampoline into the
    system partition, (3) runs the as-libos implementation, and (4)
    returns through the trampoline.  User code never issues a syscall
    itself — its image must not even contain the opcode (§6). *)

type ctx = {
  wfd : Wfd.t;
  thread : Wfd.thread;
  language : Workflow.language;
  buffer_bw : float;  (** Buffer copy bandwidth of this language path. *)
  compute_factor : float;  (** Slowdown vs native Rust for pure compute. *)
  phases : (string, Sim.Units.time) Hashtbl.t;  (** Fig. 15 accounting. *)
  code_cache : Wasm.Compile_cache.t option;
      (** Shared compile cache for modules this function loads; host
          time only, virtual charges unchanged. *)
}

val make_ctx : ?code_cache:Wasm.Compile_cache.t -> Wfd.t -> Wfd.thread -> Workflow.language -> ctx
(** Context for a Rust-native function (factor 1.0); WASM-hosted
    languages get their factors from the platform layer via
    {!with_runtime}. *)

val load_wasm : ctx -> Wasm.Runtime.profile -> Wasm.Wmodule.t -> Wasm.Runtime.loaded
(** {!Wasm.Runtime.load} on the calling thread's clock, through the
    context's shared compile cache and the WFD's fault plan. *)

val with_runtime : ctx -> Wasm.Runtime.profile -> ctx
(** Adjust bandwidth/compute factors for a WASM-hosted language. *)

val with_span : ctx -> category:string -> label:string -> (unit -> 'a) -> 'a
(** Run the thunk under a fresh {!Sim.Span} on the calling thread's
    clock, installed as the WFD's current trace context and as the
    ambient parent for substrate layers.  One branch when tracing is
    off. *)

val sys : ctx -> string -> (clock:Sim.Clock.t -> 'a) -> 'a
(** [sys ctx entry f]: the full as-std call path for entry [entry] —
    entry-table check (slow path loads the module), trampoline in, run
    [f] with the thread's clock, trampoline out.  Traced as a
    ["network"] span for socket entries, an ["io"] span otherwise. *)

(** {1 File API (Fig. 5 style)} *)

val open_file : ctx -> ?create:bool -> string -> int
(** Raises {!Errno.Error}. *)

val read_fd : ctx -> fd:int -> len:int -> bytes
val write_fd : ctx -> fd:int -> bytes -> int
val close_fd : ctx -> fd:int -> unit
val read_whole_file : ctx -> string -> bytes
val write_whole_file : ctx -> string -> bytes -> unit
val file_exists : ctx -> string -> bool

(** {1 Console / time} *)

val println : ctx -> string -> unit
val now_ns : ctx -> int64

(** {1 Network} *)

val tcp_connect : ctx -> ip:string -> port:int -> Netsim.Tcp.t
val tcp_bind : ctx -> port:int -> Libos_socket.listener

val tcp_connect_fd : ctx -> ip:string -> port:int -> int
(** Like {!tcp_connect} but installs the connection in the WFD's fd
    table, so it is usable through plain {!read_fd}/{!write_fd} (the
    Fig. 5 HTTP-client style). *)

(** {1 Compute accounting} *)

val compute : ctx -> Sim.Units.time -> unit
(** Charge pure computation measured in native-Rust time; the context's
    language factor is applied. *)

val compute_bytes : ctx -> per_byte_ns:float -> int -> unit

val in_phase : ctx -> string -> (unit -> 'a) -> 'a
(** Attribute the virtual time spent in the thunk to a named phase
    (read / compute / transfer — Fig. 15). *)

val phase_time : ctx -> string -> Sim.Units.time
