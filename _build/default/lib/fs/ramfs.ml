open Sim

type t = { files : (string, bytes) Hashtbl.t }

(* Page-cache-speed copies; no allocation/chain overhead to speak of. *)
let bw = 8.2e9
let per_op = Units.ns 600

let create () = { files = Hashtbl.create 64 }

let charge clock len =
  match clock with
  | Some c -> Clock.advance c (Units.add per_op (Units.time_for_bytes ~bytes_per_sec:bw len))
  | None -> ()

let write_file t ?clock path data =
  Hashtbl.replace t.files path (Bytes.copy data);
  charge clock (Bytes.length data)

let find t path =
  match Hashtbl.find_opt t.files path with Some b -> b | None -> raise Not_found

let read_file t ?clock path =
  let data = find t path in
  charge clock (Bytes.length data);
  Bytes.copy data

let file_size t path = Bytes.length (find t path)

let exists t path = Hashtbl.mem t.files path

let delete t path =
  ignore (find t path);
  Hashtbl.remove t.files path

let list_files t = Hashtbl.fold (fun k _ acc -> k :: acc) t.files [] |> List.sort compare
