(** pipe: the two-function intermediate-data microbenchmark (Fig. 11).
    Function A writes [size] bytes; function B reads and checksums
    them.  The platform's transfer latency is exactly what this app
    measures. *)

val app : seed:int -> size:int -> Fctx.app

(** no-ops: an empty function that returns immediately (cold-start
    benchmark, Fig. 10). *)
val noops : Fctx.app

(** http-server: binds a port and returns a fixed response. *)
val http_server : Fctx.app

val fixed_response : string
