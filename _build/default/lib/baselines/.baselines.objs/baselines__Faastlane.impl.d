lib/baselines/faastlane.ml: Alloystack_core Array Bytes Clock Fctx Fsim Hashtbl Hostos List Platform Runner Sim Units Vmm Workloads
