(* The streaming arrival process must be a drop-in for the materialised
   generators: same seed, same draws, bit-identical schedule — and a
   bounded-memory guarantee on long streams (the whole point of
   streaming). *)

open Sim
open Baselines

(* The exact shape every materialised generator in the tree used: one
   exponential per arrival, then (for multi-endpoint traces) one
   uniform pick from the same stream. *)
let materialised ~seed ~qps ~endpoints ~count =
  let rng = Rng.create seed in
  let t = ref 0.0 in
  List.init count (fun _ ->
      t := !t +. Rng.exponential rng ~mean:(1.0 /. qps);
      let arrival = Units.ns_f (!t *. 1e9) in
      let ep =
        if Array.length endpoints = 1 then endpoints.(0) else Rng.pick rng endpoints
      in
      (ep, arrival))

let collect next =
  let rec go acc = match next () with None -> List.rev acc | Some r -> go (r :: acc) in
  go []

let pair_eq (e1, (a1 : Units.time)) (e2, a2) =
  String.equal e1 e2 && Units.equal a1 a2

let test_stream_equals_materialised () =
  List.iter
    (fun seed ->
      List.iter
        (fun endpoints ->
          let qps = 700.0 and count = 500 in
          let want = materialised ~seed ~qps ~endpoints ~count in
          let got =
            collect (Loadgen.request_stream ~seed ~qps ~endpoints ~count ())
          in
          Alcotest.(check int)
            (Printf.sprintf "seed %d: count" seed)
            (List.length want) (List.length got);
          List.iteri
            (fun i (w, g) ->
              if not (pair_eq w g) then
                Alcotest.failf "seed %d request %d: (%s, %Ld) <> (%s, %Ld)" seed i
                  (fst w) (Units.to_ns (snd w)) (fst g) (Units.to_ns (snd g)))
            (List.combine want got))
        [ [| "a"; "b"; "c" |]; [| "solo" |] ])
    [ 1; 7; 42; 123; 9999 ]

let test_arrivals_monotone () =
  let a = Loadgen.arrivals ~seed:3 ~qps:1000.0 () in
  let prev = ref Units.zero in
  for i = 1 to 10_000 do
    let t = Loadgen.next_arrival a in
    Alcotest.(check bool)
      (Printf.sprintf "arrival %d nondecreasing" i)
      true
      (Units.compare !prev t <= 0);
    prev := t
  done;
  Alcotest.(check int) "count" 10_000 (Loadgen.arrivals_count a)

let test_stream_constant_memory () =
  (* Consuming a 50k-request stream must not retain the schedule: the
     words still live after the run are a small constant, nowhere near
     the ~millions a materialised 50k-request list would hold. *)
  Gc.full_major ();
  let live0 = (Gc.stat ()).Gc.live_words in
  let next =
    Loadgen.request_stream ~seed:42 ~qps:900.0 ~endpoints:[| "a"; "b"; "c" |]
      ~count:50_000 ()
  in
  let n = ref 0 and last = ref Units.zero in
  let rec go () =
    match next () with
    | None -> ()
    | Some (_, at) ->
        incr n;
        last := at;
        go ()
  in
  go ();
  Gc.full_major ();
  let live1 = (Gc.stat ()).Gc.live_words in
  Alcotest.(check int) "drained everything" 50_000 !n;
  Alcotest.(check bool) "arrivals advanced" true (Units.( > ) !last Units.zero);
  let retained = live1 - live0 in
  if retained > 50_000 then
    Alcotest.failf "stream retained %d words (bound 50k)" retained

let test_run_result_sane () =
  (* The heap-based in-flight rewrite of [run] keeps the closed-form
     sanity properties: below saturation the queue stays shallow, far
     above it the sojourn blows up, and equal seeds replay exactly. *)
  let spec =
    { Loadgen.cores = 8; width = 2; service = Units.ms 10; contention = 0.05 }
  in
  let sat = Loadgen.saturation_qps spec in
  let light = Loadgen.run spec ~qps:(sat *. 0.3) ~requests: 2_000 in
  let heavy = Loadgen.run spec ~qps:(sat *. 3.0) ~requests: 2_000 in
  Alcotest.(check bool) "light p99 < heavy p99" true
    (Units.( > ) heavy.Loadgen.p99 light.Loadgen.p99);
  (* Gang width bounds concurrency at cores/width whatever the load. *)
  Alcotest.(check bool) "inflight within gang bound" true
    (heavy.Loadgen.max_inflight <= (spec.Loadgen.cores / spec.Loadgen.width) + 1);
  let a = Loadgen.run ~seed:5 spec ~qps:sat ~requests:1_000 in
  let b = Loadgen.run ~seed:5 spec ~qps:sat ~requests:1_000 in
  Alcotest.(check bool) "seeded replay identical" true (a = b)

let suite =
  [
    Alcotest.test_case "streaming == materialised, several seeds" `Quick
      test_stream_equals_materialised;
    Alcotest.test_case "arrivals nondecreasing over 10k draws" `Quick
      test_arrivals_monotone;
    Alcotest.test_case "50k stream retains O(1) memory" `Quick
      test_stream_constant_memory;
    Alcotest.test_case "run: heap inflight keeps queueing behaviour" `Quick
      test_run_result_sane;
  ]
