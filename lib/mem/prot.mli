(** Memory Protection Keys (MPK) model.

    Mirrors Intel MPK semantics: 16 protection keys; each mapped page is
    tagged with one key; each hardware thread carries a PKRU register with
    two bits per key — access-disable (AD) and write-disable (WD).  A data
    access is allowed only if the page's key is not access-disabled (and,
    for writes, not write-disabled) in the current thread's PKRU.

    Key 0 is the default key; like on real hardware we treat it as the
    "system" key owned by as-visor / as-libos. *)

type key = private int
(** A protection key, 0..15. *)

val default_key : key
(** Key 0 — assigned to pages whose key was never changed. *)

val key_of_int : int -> key
(** Raises [Invalid_argument] outside 0..15. *)

val key_to_int : key -> int

type pkru
(** Value of the PKRU register: a 32-bit rights word. *)

val pkru_allow_all : pkru
(** All keys readable and writable (PKRU = 0). *)

val pkru_deny_all_except : key list -> pkru
(** Rights word granting full access to the listed keys and no access to
    every other key.  This is how a trampoline builds the user-context or
    system-context PKRU. *)

val allow : pkru -> key -> pkru
(** Grant read+write for a key. *)

val deny : pkru -> key -> pkru
(** Remove all access for a key (set AD). *)

val deny_write : pkru -> key -> pkru
(** Make a key read-only (set WD, clear AD). *)

val can_read : pkru -> key -> bool
val can_write : pkru -> key -> bool

val to_int32 : pkru -> int32
val of_int32 : int32 -> pkru

val bits : pkru -> int
(** The rights word as an immediate (unboxed) integer — lets hot paths
    compare PKRUs without a boxed [int32] equality. *)

val equal_pkru : pkru -> pkru -> bool
val pp_pkru : Format.formatter -> pkru -> unit

type access = Read | Write | Execute

val pp_access : Format.formatter -> access -> unit

val access_allowed : pkru -> key -> access -> bool
(** MPK does not police instruction fetches: [Execute] is always allowed
    by PKRU (page permissions handle it). *)
