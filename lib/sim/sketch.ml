(* Deterministic quantile sketches: P^2 (Jain & Chlamtac 1985) and a
   merging t-digest (Dunning & Ertl).  Neither draws randomness; both
   are pure functions of the add-call sequence, so every estimate they
   produce is bit-identical across hosts and domain counts. *)

module P2 = struct
  (* Five markers: min, the q/2, q and (1+q)/2 quantile estimates, max.
     Marker heights [q_], actual positions [n_] (1-based, integral),
     desired positions [n'] (float), per-observation desired-position
     increments [dn']. *)
  type t = {
    p : float;
    h : float array; (* marker heights *)
    pos : int array; (* actual marker positions *)
    np : float array; (* desired marker positions *)
    dn : float array; (* desired position increments *)
    mutable seen : int;
  }

  let create p =
    if not (p > 0.0 && p < 1.0) then
      invalid_arg "Sketch.P2.create: quantile must be in (0,1)";
    {
      p;
      h = Array.make 5 0.0;
      pos = [| 1; 2; 3; 4; 5 |];
      np = [| 1.0; 1.0 +. (2.0 *. p); 1.0 +. (4.0 *. p); 3.0 +. (2.0 *. p); 5.0 |];
      dn = [| 0.0; p /. 2.0; p; (1.0 +. p) /. 2.0; 1.0 |];
      seen = 0;
    }

  let count t = t.seen

  let parabolic t i d =
    let q = t.h and n = t.pos in
    let fi j = float_of_int n.(j) in
    q.(i)
    +. d
       /. (fi (i + 1) -. fi (i - 1))
       *. (((fi i -. fi (i - 1) +. d) *. (q.(i + 1) -. q.(i)) /. (fi (i + 1) -. fi i))
          +. ((fi (i + 1) -. fi i -. d) *. (q.(i) -. q.(i - 1)) /. (fi i -. fi (i - 1))))

  let linear t i d =
    let q = t.h and n = t.pos in
    let j = i + int_of_float d in
    q.(i) +. (d *. (q.(j) -. q.(i)) /. float_of_int (n.(j) - n.(i)))

  let add t x =
    if t.seen < 5 then begin
      (* Initialisation: collect the first five observations sorted. *)
      t.h.(t.seen) <- x;
      t.seen <- t.seen + 1;
      if t.seen = 5 then Array.sort Float.compare t.h
    end
    else begin
      t.seen <- t.seen + 1;
      let k =
        if x < t.h.(0) then begin
          t.h.(0) <- x;
          0
        end
        else if x >= t.h.(4) then begin
          t.h.(4) <- x;
          3
        end
        else begin
          let k = ref 0 in
          for i = 0 to 3 do
            if t.h.(i) <= x && x < t.h.(i + 1) then k := i
          done;
          !k
        end
      in
      for i = k + 1 to 4 do
        t.pos.(i) <- t.pos.(i) + 1
      done;
      for i = 0 to 4 do
        t.np.(i) <- t.np.(i) +. t.dn.(i)
      done;
      for i = 1 to 3 do
        let d = t.np.(i) -. float_of_int t.pos.(i) in
        if
          (d >= 1.0 && t.pos.(i + 1) - t.pos.(i) > 1)
          || (d <= -1.0 && t.pos.(i - 1) - t.pos.(i) < -1)
        then begin
          let d = if d >= 0.0 then 1.0 else -1.0 in
          let hp = parabolic t i d in
          let h =
            if t.h.(i - 1) < hp && hp < t.h.(i + 1) then hp else linear t i d
          in
          t.h.(i) <- h;
          t.pos.(i) <- t.pos.(i) + int_of_float d
        end
      done
    end

  let quantile t =
    if t.seen = 0 then nan
    else if t.seen >= 5 then t.h.(2)
    else begin
      (* Fewer than five observations: answer exactly from the sorted
         prefix, nearest-rank with linear interpolation. *)
      let a = Array.sub t.h 0 t.seen in
      Array.sort Float.compare a;
      let n = t.seen in
      if n = 1 then a.(0)
      else begin
        let rank = t.p *. float_of_int (n - 1) in
        let lo = min (n - 2) (int_of_float rank) in
        let frac = rank -. float_of_int lo in
        a.(lo) +. (frac *. (a.(lo + 1) -. a.(lo)))
      end
    end
end

module Tdigest = struct
  let buf_cap = 256

  type t = {
    compression : float;
    mutable means : float array; (* sorted, first [n] entries live *)
    mutable weights : float array;
    mutable n : int;
    mutable total : float; (* weight held in centroids *)
    buf_m : float array; (* pending unmerged points *)
    buf_w : float array;
    mutable buf_len : int;
    mutable buf_total : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let create ?(compression = 100.0) () =
    if not (compression >= 10.0) then
      invalid_arg "Sketch.Tdigest.create: compression must be >= 10";
    {
      compression;
      means = Array.make 16 0.0;
      weights = Array.make 16 0.0;
      n = 0;
      total = 0.0;
      buf_m = Array.make buf_cap 0.0;
      buf_w = Array.make buf_cap 0.0;
      buf_len = 0;
      buf_total = 0.0;
      minv = infinity;
      maxv = neg_infinity;
    }

  let count t = t.total +. t.buf_total
  let min_value t = t.minv
  let max_value t = t.maxv

  (* Merge the sorted centroid prefix with the (sorted-on-demand)
     buffer, then compress: scan in ascending-mean order, greedily
     fusing neighbours while the fused weight stays under the k1-style
     bound 4 * total * q * (1-q) / compression at the fused midpoint.
     Every step is order-determined float arithmetic — no randomness,
     no hashing. *)
  let flush t =
    if t.buf_len > 0 then begin
      (* Sort buffer points by mean.  Indirect sort keeps (mean,
         weight) pairs together; ties resolve by original insertion
         index, which is itself deterministic. *)
      let idx = Array.init t.buf_len (fun i -> i) in
      Array.sort
        (fun a b ->
          let c = Float.compare t.buf_m.(a) t.buf_m.(b) in
          if c <> 0 then c else compare a b)
        idx;
      let m = t.n + t.buf_len in
      let tm = Array.make m 0.0 and tw = Array.make m 0.0 in
      (* Two-way merge of sorted centroids and sorted buffer. *)
      let i = ref 0 and j = ref 0 and k = ref 0 in
      while !i < t.n || !j < t.buf_len do
        let take_centroid =
          !j >= t.buf_len
          || (!i < t.n && t.means.(!i) <= t.buf_m.(idx.(!j)))
        in
        if take_centroid then begin
          tm.(!k) <- t.means.(!i);
          tw.(!k) <- t.weights.(!i);
          incr i
        end
        else begin
          tm.(!k) <- t.buf_m.(idx.(!j));
          tw.(!k) <- t.buf_w.(idx.(!j));
          incr j
        end;
        incr k
      done;
      let total = t.total +. t.buf_total in
      (* Compress in place over (tm, tw). *)
      let out = ref 0 and done_w = ref 0.0 in
      let cur_m = ref tm.(0) and cur_w = ref tw.(0) in
      for x = 1 to m - 1 do
        let w = tw.(x) in
        let fused = !cur_w +. w in
        let q_mid = (!done_w +. (fused /. 2.0)) /. total in
        let limit = 4.0 *. total *. q_mid *. (1.0 -. q_mid) /. t.compression in
        if fused <= Float.max 1.0 limit then begin
          (* Fuse into the running centroid (weighted mean update). *)
          cur_m := !cur_m +. (w /. fused *. (tm.(x) -. !cur_m));
          cur_w := fused
        end
        else begin
          tm.(!out) <- !cur_m;
          tw.(!out) <- !cur_w;
          done_w := !done_w +. !cur_w;
          incr out;
          cur_m := tm.(x);
          cur_w := w
        end
      done;
      tm.(!out) <- !cur_m;
      tw.(!out) <- !cur_w;
      incr out;
      let n = !out in
      if Array.length t.means < n then begin
        t.means <- Array.make (2 * n) 0.0;
        t.weights <- Array.make (2 * n) 0.0
      end;
      Array.blit tm 0 t.means 0 n;
      Array.blit tw 0 t.weights 0 n;
      t.n <- n;
      t.total <- total;
      t.buf_len <- 0;
      t.buf_total <- 0.0
    end

  let add ?(weight = 1.0) t x =
    if not (weight > 0.0) then invalid_arg "Sketch.Tdigest.add: weight <= 0";
    if Float.is_nan x then invalid_arg "Sketch.Tdigest.add: nan";
    if x < t.minv then t.minv <- x;
    if x > t.maxv then t.maxv <- x;
    t.buf_m.(t.buf_len) <- x;
    t.buf_w.(t.buf_len) <- weight;
    t.buf_len <- t.buf_len + 1;
    t.buf_total <- t.buf_total +. weight;
    if t.buf_len = buf_cap then flush t

  let centroid_count t =
    flush t;
    t.n

  let quantile t q =
    flush t;
    if t.n = 0 then nan
    else if t.n = 1 then t.means.(0)
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let target = q *. t.total in
      (* Centroid i's mass is centred at cum_i + w_i / 2. *)
      if target <= t.weights.(0) /. 2.0 then begin
        (* Below the first midpoint: interpolate from the observed min. *)
        let half = t.weights.(0) /. 2.0 in
        if half <= 0.0 then t.minv
        else t.minv +. (target /. half *. (t.means.(0) -. t.minv))
      end
      else begin
        let last = t.n - 1 in
        let tail_mid = t.total -. (t.weights.(last) /. 2.0) in
        if target >= tail_mid then begin
          let half = t.weights.(last) /. 2.0 in
          if half <= 0.0 then t.maxv
          else
            t.means.(last)
            +. ((target -. tail_mid) /. half *. (t.maxv -. t.means.(last)))
        end
        else begin
          (* Find consecutive midpoints bracketing the target. *)
          let cum = ref 0.0 and i = ref 0 in
          let res = ref nan in
          (try
             while !i < last do
               let mid_i = !cum +. (t.weights.(!i) /. 2.0) in
               let mid_j =
                 !cum +. t.weights.(!i) +. (t.weights.(!i + 1) /. 2.0)
               in
               if target < mid_j then begin
                 let span = mid_j -. mid_i in
                 let frac = if span <= 0.0 then 0.0 else (target -. mid_i) /. span in
                 res :=
                   t.means.(!i) +. (frac *. (t.means.(!i + 1) -. t.means.(!i)));
                 raise Exit
               end;
               cum := !cum +. t.weights.(!i);
               incr i
             done;
             res := t.means.(last)
           with Exit -> ());
          (* Clamp to the observed range: interpolation can otherwise
             drift past min/max on tiny populations. *)
          Float.max t.minv (Float.min t.maxv !res)
        end
      end
    end

  let percentile t p = quantile t (p /. 100.0)

  let merge_into ~src ~dst =
    flush src;
    for i = 0 to src.n - 1 do
      add ~weight:src.weights.(i) dst src.means.(i)
    done;
    if src.minv < dst.minv then dst.minv <- src.minv;
    if src.maxv > dst.maxv then dst.maxv <- src.maxv

  let clear t =
    t.n <- 0;
    t.total <- 0.0;
    t.buf_len <- 0;
    t.buf_total <- 0.0;
    t.minv <- infinity;
    t.maxv <- neg_infinity
end
