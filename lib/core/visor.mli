(** as-visor: the global runtime layer (§3.3).

    Owns workflow execution end to end: the watchdog receives the
    invocation event, the orchestrator instantiates a WFD, spawns one
    thread per function instance stage by stage (threads are cloned
    Linux threads scheduled on the host's cores), and destroys the WFD
    when the workflow completes.  Before anything runs, function images
    go through blacklist admission (§6). *)

type kernel = Asstd.ctx -> instance:int -> total:int -> unit
(** A user function body: receives its as-std context plus its parallel
    instance coordinates. *)

type binding = { kernel : kernel; image : Isa.Image.t option }

val bind : ?image:Isa.Image.t -> kernel -> binding

type retry_policy =
  | No_retry
  | Retry_function of int
      (** Restart only the failed function, up to n attempts total
          (§3.1: possible when as-libos is unaffected and the
          intermediate data is intact — function heaps are recovered
          per heap unit). *)
  | Retry_workflow of int
      (** Restart the whole workflow in a fresh WFD, up to n attempts
          total (idempotent functions). *)

type backoff =
  | No_backoff
  | Exponential of { base : Sim.Units.time; factor : float; limit : Sim.Units.time }
      (** Attempt [k] (k >= 2) waits [min limit (base * factor^(k-2))]
          of virtual time before restarting. *)

val backoff_delay : backoff -> attempt:int -> Sim.Units.time
(** The wait charged before the given attempt number (zero for the
    first attempt) — exposed so tests can assert the exact schedule. *)

type config = {
  cores : int;  (** Host CPUs available to this WFD. *)
  features : Wfd.features;
  vfs : Fsim.Vfs.t option;  (** Pre-staged disk image (inputs). *)
  wasm_runtime : Wasm.Runtime.profile option;
      (** Runtime for C/Python functions; default Wasmtime. *)
  dispatch_latency : Sim.Units.time;  (** Orchestrator per-thread dispatch. *)
  retry : retry_policy;
  cpu_quota : float option;
      (** §9 resource allocation: cgroup CPU bandwidth per function
          thread (0 < q <= 1); [None] = unlimited. *)
  fault : Sim.Fault.t option;
      (** Deterministic fault plan armed across the WFD's substrate
          (disk, buffer heap, loader, network, function threads). *)
  timeout : Sim.Units.time option;
      (** Per-function virtual-time watchdog: an attempt running (or
          hanging) past this budget is killed and counts as a failed
          attempt under the retry policy. *)
  backoff : backoff;  (** Wait between retry attempts. *)
}

val default_config : config

type stage_report = {
  stage_index : int;
  instance_durations : Sim.Units.time list;
  stage_makespan : Sim.Units.time;
  fan_in_waits : Sim.Units.time list;
}

type report = {
  e2e : Sim.Units.time;  (** Trigger to workflow completion. *)
  cold_start : Sim.Units.time;
      (** Trigger to first user instruction (the Fig. 10 metric). *)
  admission : Sim.Units.time;
      (** Image scanning/rewriting time (off the critical path). *)
  stage_reports : stage_report list;
  phase_totals : (string * Sim.Units.time) list;
      (** Summed per-phase time across all function threads (Fig. 15). *)
  entry_misses : int;
  entry_hits : int;
  trampoline_crossings : int;
  peak_rss : int;
  stdout : string;
  loaded_modules : string list;
  retries : int;  (** Function or workflow restarts performed. *)
}

exception Admission_failed of string
(** An image contained non-rewritable blacklisted instructions. *)

exception Function_failed of { fn : string; attempts : int; error : exn }
(** A user function kept failing after the configured retries.  The
    failure never escapes the WFD: MPK fault isolation means other
    WFDs (and the visor itself) are unaffected. *)

exception Function_hung of { fn : string }
(** An injected hang wedged a function thread and no [config.timeout]
    watchdog was armed: the hang is undetectable and the workflow never
    completes.  Not retried — configure a timeout to recover. *)

exception Timed_out of { fn : string; after : Sim.Units.time }
(** The [error] payload inside {!Function_failed} when an attempt was
    killed by the per-function watchdog timeout. *)

val run :
  ?config:config ->
  workflow:Workflow.t ->
  bindings:(string * binding) list ->
  unit ->
  report
(** Execute the workflow once in a fresh WFD.  Raises
    [Invalid_argument] if a node has no binding, {!Admission_failed} on
    a rejected image. *)

val cold_start_only : ?config:config -> unit -> Sim.Units.time
(** The no-ops cold-start measurement: trigger to first user
    instruction of an empty function. *)
